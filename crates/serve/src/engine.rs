//! The serving engine: model registry, request execution and the
//! persistent worker pool.

use crate::pool::ContextPool;
use crate::request::{RecommendRequest, RecommendResponse, ServeError};
use crate::router::ShardRouter;
use longtail_core::{DpStopping, DpTelemetry, RecommendOptions, Recommender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// A recommender shared between the engine's caller threads and pool
/// workers. Every concrete recommender in `longtail-core` is an immutable
/// model after construction, hence `Send + Sync`.
pub type SharedRecommender = Arc<dyn Recommender + Send + Sync>;

/// One registry slot: a single model, or a user-sharded group of them.
enum ModelEntry {
    Single(SharedRecommender),
    Sharded {
        router: Arc<dyn ShardRouter>,
        shards: Vec<SharedRecommender>,
    },
}

impl ModelEntry {
    /// The recommender (and shard index, for sharded entries) owning
    /// `user`'s requests.
    fn resolve(&self, user: u32) -> (&SharedRecommender, Option<usize>) {
        match self {
            Self::Single(rec) => (rec, None),
            Self::Sharded { router, shards } => {
                let shard = router.route(user, shards.len());
                assert!(
                    shard < shards.len(),
                    "router returned shard {shard} for {} shards",
                    shards.len()
                );
                (&shards[shard], Some(shard))
            }
        }
    }
}

/// Registry + pools — the part of the engine shared with worker threads.
struct EngineCore {
    models: HashMap<String, ModelEntry>,
    default_stopping: DpStopping,
    contexts: ContextPool,
    /// Engine-lifetime [`DpTelemetry`], merged across every request served
    /// by any caller thread or pool worker.
    aggregate: Mutex<DpTelemetry>,
}

impl EngineCore {
    /// Serve one request on the calling thread through a pooled context.
    fn execute(&self, req: &RecommendRequest) -> Result<RecommendResponse, ServeError> {
        let entry = self
            .models
            .get(&req.model)
            .ok_or_else(|| ServeError::UnknownModel(req.model.clone()))?;
        let (rec, shard) = entry.resolve(req.user);

        // Normalize the request's exclusion set to the sorted/deduped form
        // RecommendOptions requires. Only requests that actually exclude
        // anything pay the copy.
        let mut exclude_sorted;
        let exclude: &[u32] = if req.exclude.is_empty() {
            &[]
        } else {
            exclude_sorted = req.exclude.clone();
            exclude_sorted.sort_unstable();
            exclude_sorted.dedup();
            &exclude_sorted
        };
        let opts = RecommendOptions {
            stopping: req.stopping.unwrap_or(self.default_stopping),
            exclude,
        };

        let mut ctx = self.contexts.checkout();
        let before = ctx.dp_telemetry();
        let mut items = Vec::new();
        // A panicking query (e.g. an out-of-range user id) must not take a
        // long-lived pool worker — or a whole batch — down with it: catch
        // it and fail only this request. The context is NOT checked back in
        // on panic (its buffers may be mid-update); dropping it costs one
        // warm context, nothing else. The shared state touched below the
        // catch (pool, aggregate) is only ever locked around non-panicking
        // code, so observing it after an unwind is sound.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rec.recommend_into(req.user, req.k, &opts, &mut ctx, &mut items);
        }));
        if let Err(payload) = outcome {
            return Err(ServeError::RequestPanicked(panic_message(&payload)));
        }
        let telemetry = ctx.dp_telemetry().since(&before);
        self.contexts.checkin(ctx);
        self.aggregate.lock().merge(&telemetry);

        Ok(RecommendResponse {
            items,
            model: rec.name(),
            shard,
            telemetry,
        })
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A queued unit of work: one request plus the reply slot it answers to.
struct Job {
    index: usize,
    request: RecommendRequest,
    reply: mpsc::Sender<(usize, Result<RecommendResponse, ServeError>)>,
}

/// The multi-model serving engine.
///
/// An `Engine` owns a registry of named models (optionally sharded by a
/// [`ShardRouter`]), a [`ContextPool`] of reusable scoring contexts, and —
/// unless built with `workers(0)` — a pool of persistent worker threads
/// draining a shared channel queue. [`Engine::recommend`] serves inline on
/// the calling thread (lowest latency); [`Engine::recommend_batch`] fans a
/// batch out across the worker pool, paying no thread start-up per call.
///
/// Output equivalence is a pinned contract: for any request, the response's
/// `items` are exactly what the routed recommender's
/// [`Recommender::recommend_into`] produces with the request's effective
/// [`RecommendOptions`] — the engine adds routing, pooling and telemetry,
/// never ranking changes.
///
/// ```
/// use longtail_core::{GraphRecConfig, HittingTimeRecommender};
/// use longtail_data::{Dataset, Rating};
/// use longtail_serve::{Engine, RecommendRequest};
/// use std::sync::Arc;
///
/// let ratings = [
///     Rating { user: 0, item: 0, value: 5.0 },
///     Rating { user: 1, item: 0, value: 4.0 },
///     Rating { user: 1, item: 1, value: 5.0 },
/// ];
/// let train = Dataset::from_ratings(2, 2, &ratings);
/// let engine = Engine::builder()
///     .model("HT", Arc::new(HittingTimeRecommender::new(&train, GraphRecConfig::default())))
///     .workers(2)
///     .build();
/// let response = engine.recommend(&RecommendRequest::new("HT", 0, 5)).unwrap();
/// assert_eq!(response.items[0].item, 1);
/// ```
pub struct Engine {
    core: Arc<EngineCore>,
    /// Job queue feeding the worker pool; `None` when built with 0 workers.
    /// Behind a mutex because `mpsc::Sender` is single-threaded to clone
    /// from — batch dispatch clones it once per call.
    queue: Option<Mutex<mpsc::Sender<Job>>>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Start configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Serve one request inline on the calling thread, through a pooled
    /// context — the low-latency path. The worker pool is not involved.
    pub fn recommend(&self, req: &RecommendRequest) -> Result<RecommendResponse, ServeError> {
        self.core.execute(req)
    }

    /// Serve a batch by fanning the requests out across the persistent
    /// worker pool (or inline, in order, when built with `workers(0)`).
    ///
    /// `results[j]` answers `requests[j]`; per-request failures (unknown
    /// model) are returned in place, never aborting the rest of the batch.
    pub fn recommend_batch(
        &self,
        requests: Vec<RecommendRequest>,
    ) -> Vec<Result<RecommendResponse, ServeError>> {
        let Some(queue) = &self.queue else {
            return requests.iter().map(|r| self.core.execute(r)).collect();
        };
        let n = requests.len();
        let (reply, inbox) = mpsc::channel();
        {
            let sender = queue.lock().clone();
            for (index, request) in requests.into_iter().enumerate() {
                sender
                    .send(Job {
                        index,
                        request,
                        reply: reply.clone(),
                    })
                    .expect("worker pool outlives the engine");
            }
        }
        drop(reply);
        let mut slots: Vec<Option<Result<RecommendResponse, ServeError>>> =
            (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (index, result) = inbox.recv().expect("every job replies once");
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index answered"))
            .collect()
    }

    /// Names of every registered model, sorted.
    pub fn models(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.core.models.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of persistent worker threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Engine-lifetime [`DpTelemetry`], merged (via [`DpTelemetry::merge`])
    /// across every request served so far — inline and pool-worker alike.
    pub fn telemetry(&self) -> DpTelemetry {
        *self.core.aggregate.lock()
    }

    /// Zero the engine-lifetime telemetry (e.g. between benchmark phases).
    pub fn reset_telemetry(&self) {
        *self.core.aggregate.lock() = DpTelemetry::default();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the queue ends every worker's recv loop; join so no
        // worker outlives the registry it borrows through `Arc`.
        self.queue = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// What a pool worker does for its whole life: pull jobs off the shared
/// queue, serve them through the core, reply. Ends when the engine drops
/// the queue's send side.
fn worker_loop(core: Arc<EngineCore>, queue: Arc<Mutex<mpsc::Receiver<Job>>>) {
    loop {
        // Hold the queue lock only for the dequeue itself: serving runs
        // unlocked, so workers overlap on the actual scoring work.
        let job = queue.lock().recv();
        match job {
            Ok(Job {
                index,
                request,
                reply,
            }) => {
                // A closed reply channel means the batch caller gave up
                // (e.g. panicked); nothing useful to do with the result.
                let _ = reply.send((index, core.execute(&request)));
            }
            Err(mpsc::RecvError) => break,
        }
    }
}

/// Configures and builds an [`Engine`].
pub struct EngineBuilder {
    models: HashMap<String, ModelEntry>,
    workers: Option<usize>,
    max_idle_contexts: Option<usize>,
    default_stopping: DpStopping,
}

impl EngineBuilder {
    /// An empty registry with defaults: one worker per available core, a
    /// context pool sized to the workers, adaptive stopping.
    pub fn new() -> Self {
        Self {
            models: HashMap::new(),
            workers: None,
            max_idle_contexts: None,
            default_stopping: DpStopping::default(),
        }
    }

    /// Register `rec` under `name`, replacing any previous registration of
    /// that name.
    pub fn model(mut self, name: impl Into<String>, rec: SharedRecommender) -> Self {
        self.models.insert(name.into(), ModelEntry::Single(rec));
        self
    }

    /// Register a user-sharded model group under `name`: requests route to
    /// `shards[router.route(user, shards.len())]`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn sharded_model(
        mut self,
        name: impl Into<String>,
        router: Arc<dyn ShardRouter>,
        shards: Vec<SharedRecommender>,
    ) -> Self {
        assert!(!shards.is_empty(), "a sharded model needs at least 1 shard");
        self.models
            .insert(name.into(), ModelEntry::Sharded { router, shards });
        self
    }

    /// Number of persistent worker threads backing
    /// [`Engine::recommend_batch`]. `0` disables the pool (batches run
    /// inline on the calling thread). Defaults to the available
    /// parallelism.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Cap on idle [`longtail_core::ScoringContext`]s the engine retains
    /// between requests. Defaults to `workers + 2` (every worker plus a
    /// couple of inline callers stay warm).
    pub fn max_idle_contexts(mut self, n: usize) -> Self {
        self.max_idle_contexts = Some(n);
        self
    }

    /// The [`DpStopping`] applied to requests that don't override it.
    /// Defaults to [`DpStopping::adaptive`].
    pub fn default_stopping(mut self, stopping: DpStopping) -> Self {
        self.default_stopping = stopping;
        self
    }

    /// Spawn the worker pool and finish the engine.
    pub fn build(self) -> Engine {
        let workers = self
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
        let core = Arc::new(EngineCore {
            models: self.models,
            default_stopping: self.default_stopping,
            contexts: ContextPool::new(self.max_idle_contexts.unwrap_or(workers + 2)),
            aggregate: Mutex::new(DpTelemetry::default()),
        });
        let (sender, receiver) = mpsc::channel();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|_| {
                let core = Arc::clone(&core);
                let queue = Arc::clone(&receiver);
                std::thread::spawn(move || worker_loop(core, queue))
            })
            .collect();
        Engine {
            core,
            queue: (workers > 0).then(|| Mutex::new(sender)),
            workers: handles,
        }
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}
