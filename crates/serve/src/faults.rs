//! Deterministic fault injection for chaos-testing the serving engine.
//!
//! [`FaultyRecommender`] wraps any [`Recommender`] and misbehaves on the
//! serving path according to a [`FaultPlan`]: panic on scheduled calls,
//! inject fixed latency (enough of it blows a request deadline), return
//! NaN/−∞-poisoned scores, or kill the worker thread serving the call.
//! Plans are **deterministic** — a fault either fires on the N-th
//! `recommend_into` call or it doesn't, decided by explicit schedules or by
//! a pure hash of `(seed, call index)` — so chaos tests and the
//! `fault_tolerance` bench section reproduce exactly, run to run, and the
//! expected failure count of an unprotected engine can be computed up
//! front with [`FaultPlan::count_faults`].
//!
//! Faults apply only to [`Recommender::recommend_into`] (the path the
//! engine serves); `score_into` delegates untouched so reference scoring
//! and Recall@N stay clean.

use longtail_core::{RecommendOptions, Recommender, ScoredItem, ScoringContext};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Panic-message marker of [`FaultKind::KillWorker`]: the engine's worker
/// loop treats a caught panic carrying this marker as thread-fatal and
/// exits, emulating a worker death that unwind-catching could not contain
/// (the supervision path then detects and respawns it).
pub const WORKER_KILL_MARK: &str = "longtail-serve::kill-worker";

/// One way a [`FaultyRecommender`] can misbehave on a scheduled call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic mid-query (the engine catches it and fails the request).
    Panic,
    /// Sleep for the given duration before serving normally — models a
    /// stalled dependency; longer than the request's deadline, it blows it.
    Latency(Duration),
    /// Return a top-k list whose scores are all NaN — a poisoned response
    /// the engine must detect and refuse to serve.
    NanScores,
    /// Return a top-k list whose scores are all `-∞` — the other poison
    /// the collector would never legitimately emit.
    NegInfScores,
    /// Panic with [`WORKER_KILL_MARK`], taking the serving worker thread
    /// down with the request — the supervision test vector.
    KillWorker,
}

/// When a fault fires, as a pure function of the call index.
#[derive(Debug, Clone, Copy)]
enum Schedule {
    /// Exactly the `n`-th call (0-based).
    OnCall(u64),
    /// Calls `offset, offset+period, offset+2·period, …`.
    EveryNth { period: u64, offset: u64 },
    /// Call `n` iff `hash(seed, n) < probability` — deterministic given the
    /// seed, uniformly mixing which calls fault.
    Seeded { seed: u64, probability: f64 },
}

impl Schedule {
    fn fires(&self, call: u64) -> bool {
        match *self {
            Self::OnCall(n) => call == n,
            Self::EveryNth { period, offset } => {
                call >= offset && (call - offset).is_multiple_of(period)
            }
            Self::Seeded { seed, probability } => unit_hash(seed, call) < probability,
        }
    }
}

/// SplitMix64-style avalanche of `(seed, n)` into a unit-interval float —
/// the pure function behind seeded schedules.
fn unit_hash(seed: u64, n: u64) -> f64 {
    let mut z = seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // 53 mantissa bits → uniform in [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic schedule of injected faults, consulted per
/// `recommend_into` call. Rules are checked in registration order; the
/// first that fires on a call decides its fault (at most one fault per
/// call).
///
/// ```
/// use longtail_serve::{FaultKind, FaultPlan};
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .fault_on_call(3, FaultKind::Panic)
///     .fault_every(10, 5, FaultKind::NanScores)
///     .seeded(0xc0ffee, 0.05, FaultKind::Latency(Duration::from_millis(2)));
/// assert_eq!(plan.fault_for(3), Some(FaultKind::Panic));
/// assert_eq!(plan.fault_for(15), Some(FaultKind::NanScores));
/// // Same plan, same call index, same answer — always.
/// assert_eq!(plan.fault_for(7), plan.fault_for(7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<(Schedule, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (no faults — the wrapper becomes a transparent proxy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fire `kind` on exactly the `n`-th call (0-based).
    pub fn fault_on_call(mut self, n: u64, kind: FaultKind) -> Self {
        self.rules.push((Schedule::OnCall(n), kind));
        self
    }

    /// Fire `kind` on calls `offset, offset+period, offset+2·period, …`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is 0.
    pub fn fault_every(mut self, period: u64, offset: u64, kind: FaultKind) -> Self {
        assert!(period > 0, "a zero period would fault every call");
        self.rules
            .push((Schedule::EveryNth { period, offset }, kind));
        self
    }

    /// Fire `kind` on a pseudo-random `probability` fraction of calls,
    /// decided by a pure hash of `(seed, call index)` — deterministic and
    /// reproducible for a given seed.
    pub fn seeded(mut self, seed: u64, probability: f64, kind: FaultKind) -> Self {
        self.rules
            .push((Schedule::Seeded { seed, probability }, kind));
        self
    }

    /// The fault (if any) scheduled for call `n` — a pure function.
    pub fn fault_for(&self, n: u64) -> Option<FaultKind> {
        self.rules
            .iter()
            .find(|(schedule, _)| schedule.fires(n))
            .map(|&(_, kind)| kind)
    }

    /// How many of the first `calls` call indices fault — the expected
    /// failure count of an unprotected engine serving one call per request.
    pub fn count_faults(&self, calls: u64) -> u64 {
        (0..calls).filter(|&n| self.fault_for(n).is_some()).count() as u64
    }
}

/// A [`Recommender`] wrapper that injects the faults of a [`FaultPlan`]
/// into its serving path, counting `recommend_into` calls across all
/// threads sharing it.
///
/// Everything else — `score_into`, `rated_items`, `n_items`, `name` —
/// delegates to the wrapped model untouched.
pub struct FaultyRecommender {
    inner: Arc<dyn Recommender + Send + Sync>,
    plan: FaultPlan,
    calls: AtomicU64,
}

impl FaultyRecommender {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: Arc<dyn Recommender + Send + Sync>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            calls: AtomicU64::new(0),
        }
    }

    /// Serving calls made so far (faulted or not).
    pub fn calls_made(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The wrapper's fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl Recommender for FaultyRecommender {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn score_into(&self, user: u32, ctx: &mut ScoringContext, out: &mut Vec<f64>) {
        self.inner.score_into(user, ctx, out);
    }

    fn rated_items(&self, user: u32) -> &[u32] {
        self.inner.rated_items(user)
    }

    fn n_items(&self) -> usize {
        self.inner.n_items()
    }

    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.plan.fault_for(call) {
            None => self.inner.recommend_into(user, k, opts, ctx, out),
            Some(FaultKind::Panic) => {
                panic!("injected fault: panic on call {call}")
            }
            Some(FaultKind::KillWorker) => {
                panic!("injected fault: {WORKER_KILL_MARK} on call {call}")
            }
            Some(FaultKind::Latency(delay)) => {
                std::thread::sleep(delay);
                self.inner.recommend_into(user, k, opts, ctx, out);
            }
            Some(FaultKind::NanScores) => poison(out, k, f64::NAN),
            Some(FaultKind::NegInfScores) => poison(out, k, f64::NEG_INFINITY),
        }
    }
}

/// A k-item response whose every score is `value` — what a buggy model
/// bypassing the NaN-refusing [`longtail_core::TopKCollector`] would emit.
fn poison(out: &mut Vec<ScoredItem>, k: usize, value: f64) {
    out.clear();
    out.extend((0..k.max(1) as u32).map(|item| ScoredItem { item, score: value }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_fire_deterministically() {
        let plan = FaultPlan::new()
            .fault_on_call(2, FaultKind::Panic)
            .fault_every(5, 1, FaultKind::NanScores);
        assert_eq!(plan.fault_for(0), None);
        assert_eq!(plan.fault_for(2), Some(FaultKind::Panic));
        assert_eq!(plan.fault_for(1), Some(FaultKind::NanScores));
        assert_eq!(plan.fault_for(6), Some(FaultKind::NanScores));
        assert_eq!(plan.fault_for(5), None);
        assert_eq!(plan.count_faults(7), 3); // calls 1, 2, 6
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new()
            .fault_on_call(4, FaultKind::Panic)
            .fault_on_call(4, FaultKind::NanScores);
        assert_eq!(plan.fault_for(4), Some(FaultKind::Panic));
    }

    #[test]
    fn seeded_schedule_is_reproducible_and_roughly_calibrated() {
        let plan = FaultPlan::new().seeded(42, 0.2, FaultKind::Panic);
        let again = FaultPlan::new().seeded(42, 0.2, FaultKind::Panic);
        for n in 0..500 {
            assert_eq!(plan.fault_for(n), again.fault_for(n), "call {n}");
        }
        let hits = plan.count_faults(1000);
        assert!((100..350).contains(&hits), "0.2 rate wildly off: {hits}");
        // A different seed faults a different call set.
        let other = FaultPlan::new().seeded(43, 0.2, FaultKind::Panic);
        assert!((0..500).any(|n| plan.fault_for(n) != other.fault_for(n)));
    }

    #[test]
    fn empty_plan_never_faults() {
        assert_eq!(FaultPlan::new().fault_for(0), None);
        assert_eq!(FaultPlan::new().count_faults(100), 0);
    }
}
