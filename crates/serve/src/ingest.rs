//! Streaming ingest: the epoch-versioned [`DeltaStore`] behind
//! [`crate::Engine`]'s base + delta serving and compaction redeploys.
//!
//! A `DeltaStore` accepts appended `(user, item, weight, timestamp)`
//! ratings into an [`EdgeDelta`] without ever rebuilding the frozen base
//! model. Appends land in a cheap pending log first; a **publish** folds
//! the log into the shared delta and advances the store's **epoch** — the
//! version number of the delta's contents. Queries take a
//! [`DeltaSnapshot`] (an `Arc` pin of the delta at one epoch) and serve
//! base + overlay through
//! [`longtail_core::Recommender::recommend_delta_into`]; snapshots taken
//! mid-publish see either the old or the new epoch, never a mix.
//!
//! **Epoch/version coupling** is the torn-swap defence: every snapshot
//! carries the `base_version` its delta is relative to, and the engine
//! only serves a snapshot whose `base_version` matches the model version
//! it pinned ([`crate::Engine::compact_and_deploy`] swaps both under the
//! store lock). The `(epoch, base_version)` pairs ever valid are recorded
//! in the [`DeltaStore::epoch_log`], which concurrent tests check every
//! response against.

use longtail_core::EdgeDelta;
use longtail_data::{Dataset, TimedRating};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One streamed rating append.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaRating {
    /// The rating user (may exceed the base model's user count — new users
    /// are first-class in the overlay).
    pub user: u32,
    /// The rated item (may exceed the base model's item count).
    pub item: u32,
    /// Rating value; must be positive.
    pub value: f64,
    /// Rating timestamp (same clock as the base data's stamps; feed the
    /// recency-decay path).
    pub timestamp: f64,
}

/// Tuning knobs of a [`DeltaStore`].
#[derive(Debug, Clone, Copy)]
pub struct DeltaConfig {
    /// Auto-publish the pending log into the live delta every this many
    /// appends (1 = every append is immediately visible; larger batches
    /// amortize the delta clone). [`DeltaStore::publish`] can always force
    /// it early.
    pub publish_every: usize,
    /// Advisory compaction threshold: once the live delta holds this many
    /// distinct edges, [`DeltaStore::needs_compaction`] turns true. The
    /// store keeps accepting appends past it — the bound is for the
    /// compaction loop to act on, not an admission limit.
    pub max_delta_edges: usize,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        Self {
            publish_every: 64,
            max_delta_edges: 10_000,
        }
    }
}

/// The mutable half of a [`DeltaStore`], guarded by one mutex so epoch,
/// delta, base and version always change together.
struct DeltaState {
    /// The dataset the current base model was built from — the left half
    /// of the next compaction's union.
    base: Dataset,
    /// The published delta, shared with every outstanding snapshot.
    delta: Arc<EdgeDelta>,
    /// Appends not yet folded into `delta`.
    pending: Vec<DeltaRating>,
    /// Appends not yet folded into any *base* — replayed onto a fresh
    /// delta at compaction commit to compute the residual.
    since_fold: Vec<DeltaRating>,
    /// Version of the delta's contents; bumped by every publish and every
    /// compaction commit.
    epoch: u64,
    /// The model version `delta` is relative to.
    base_version: u32,
    /// Every `(epoch, base_version)` pairing that was ever current —
    /// the consistency oracle for concurrent tests.
    epoch_log: Vec<(u64, u32)>,
}

/// A consistent view of the store at one epoch: the published delta, its
/// epoch, and the model version it overlays. Holding the snapshot pins the
/// delta (`Arc`) — later publishes and compactions swap the store, never
/// this view.
#[derive(Debug, Clone)]
pub struct DeltaSnapshot {
    /// Epoch of the pinned delta.
    pub epoch: u64,
    /// The model version this delta overlays.
    pub base_version: u32,
    /// The pinned delta contents.
    pub delta: Arc<EdgeDelta>,
}

/// What one [`crate::Engine::compact_and_deploy`] run did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionReport {
    /// Version the rebuilt model is now serving as.
    pub version: u32,
    /// Epoch published at the commit (the first epoch of the new base).
    pub epoch: u64,
    /// Delta edges folded into the rebuilt base.
    pub folded: usize,
    /// Residual delta edges (appends that raced the rebuild) carried over.
    pub remaining: usize,
    /// Wall-clock seconds of the commit section — the lock-held window in
    /// which the swap publishes (model build time excluded; the build runs
    /// outside every lock).
    pub publish_seconds: f64,
}

/// Ingest counters of one [`DeltaStore`] (or summed over an engine's
/// stores via [`crate::EngineStats::ingest`]). `appends`, `compactions`
/// and `epochs_published` are monotone; `delta_edges_live` is a gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Rating appends accepted.
    pub appends: u64,
    /// Distinct delta edges currently live (published + pending) — a
    /// gauge: [`IngestStats::since`] reports the *current* value, not a
    /// difference.
    pub delta_edges_live: u64,
    /// Compaction redeploys committed.
    pub compactions: u64,
    /// Epochs published (every publish and every compaction commit).
    pub epochs_published: u64,
}

impl IngestStats {
    /// Difference against an `earlier` snapshot: monotone counters diff
    /// (saturating), the `delta_edges_live` gauge passes through.
    pub fn since(&self, earlier: &IngestStats) -> IngestStats {
        IngestStats {
            appends: self.appends.saturating_sub(earlier.appends),
            delta_edges_live: self.delta_edges_live,
            compactions: self.compactions.saturating_sub(earlier.compactions),
            epochs_published: self
                .epochs_published
                .saturating_sub(earlier.epochs_published),
        }
    }

    /// Sum `other` into self (counters add; the gauge adds too, so an
    /// engine-wide roll-up reports total live edges across stores).
    pub(crate) fn merge(&mut self, other: &IngestStats) {
        self.appends += other.appends;
        self.delta_edges_live += other.delta_edges_live;
        self.compactions += other.compactions;
        self.epochs_published += other.epochs_published;
    }
}

/// The epoch-versioned streaming-ingest store for one registered model.
///
/// Construct with the dataset the model was built from, attach to an
/// engine with [`crate::EngineBuilder::ingest`], append ratings from any
/// thread, and run [`crate::Engine::compact_and_deploy`] periodically to
/// fold the delta into a rebuilt base. See the module docs for the epoch
/// protocol.
pub struct DeltaStore {
    state: Mutex<DeltaState>,
    config: DeltaConfig,
    /// Serializes compaction runs; queries and appends never take it.
    compaction: Mutex<()>,
    appends: AtomicU64,
    compactions: AtomicU64,
    epochs_published: AtomicU64,
}

impl DeltaStore {
    /// A store over `base` — the dataset the attached model was built
    /// from. Starts at epoch 0 over model version 1 (the build-time
    /// registration).
    pub fn new(base: Dataset, config: DeltaConfig) -> Self {
        assert!(config.publish_every > 0, "publish_every must be at least 1");
        let delta = Arc::new(EdgeDelta::new(base.n_users(), base.n_items()));
        Self {
            state: Mutex::new(DeltaState {
                base,
                delta,
                pending: Vec::new(),
                since_fold: Vec::new(),
                epoch: 0,
                base_version: 1,
                epoch_log: vec![(0, 1)],
            }),
            config,
            compaction: Mutex::new(()),
            appends: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            epochs_published: AtomicU64::new(0),
        }
    }

    /// A store over `base` with the default [`DeltaConfig`].
    pub fn with_defaults(base: Dataset) -> Self {
        Self::new(base, DeltaConfig::default())
    }

    /// Accept one rating append. O(1) amortized: the rating lands in the
    /// pending log; every `publish_every`-th append folds the log into the
    /// live delta and advances the epoch. Returns the epoch the append is
    /// visible at (the current epoch if it is still pending).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rating value (same contract as
    /// [`EdgeDelta::insert`]).
    pub fn append(&self, rating: DeltaRating) -> u64 {
        assert!(
            rating.value > 0.0,
            "rating values must be positive, got {}",
            rating.value
        );
        self.appends.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.lock();
        state.pending.push(rating);
        state.since_fold.push(rating);
        if state.pending.len() >= self.config.publish_every {
            self.publish_locked(&mut state)
        } else {
            state.epoch
        }
    }

    /// Accept a batch of appends (one lock acquisition), auto-publishing
    /// per the config. Returns the epoch after the batch.
    pub fn append_batch(&self, ratings: &[DeltaRating]) -> u64 {
        self.appends
            .fetch_add(ratings.len() as u64, Ordering::Relaxed);
        let mut state = self.state.lock();
        for &rating in ratings {
            assert!(
                rating.value > 0.0,
                "rating values must be positive, got {}",
                rating.value
            );
            state.pending.push(rating);
            state.since_fold.push(rating);
            if state.pending.len() >= self.config.publish_every {
                self.publish_locked(&mut state);
            }
        }
        state.epoch
    }

    /// Force-fold the pending log into the live delta now, making every
    /// accepted append visible to queries. Returns the current epoch
    /// (bumped only if anything was actually pending).
    pub fn publish(&self) -> u64 {
        let mut state = self.state.lock();
        self.publish_locked(&mut state)
    }

    fn publish_locked(&self, state: &mut DeltaState) -> u64 {
        if state.pending.is_empty() {
            return state.epoch;
        }
        // Clone-and-swap keeps outstanding snapshots immutable: they hold
        // the old Arc, queries after this publish see the new one.
        let mut fresh = (*state.delta).clone();
        for r in state.pending.drain(..) {
            fresh.insert(r.user, r.item, r.value, r.timestamp);
        }
        state.delta = Arc::new(fresh);
        state.epoch += 1;
        let entry = (state.epoch, state.base_version);
        state.epoch_log.push(entry);
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
        state.epoch
    }

    /// Pin the store's current view: delta contents, their epoch, and the
    /// model version they overlay.
    pub fn snapshot(&self) -> DeltaSnapshot {
        let state = self.state.lock();
        DeltaSnapshot {
            epoch: state.epoch,
            base_version: state.base_version,
            delta: Arc::clone(&state.delta),
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// The model version the current delta overlays.
    pub fn base_version(&self) -> u32 {
        self.state.lock().base_version
    }

    /// Whether the live delta has outgrown
    /// [`DeltaConfig::max_delta_edges`] — the compaction loop's trigger.
    pub fn needs_compaction(&self) -> bool {
        let state = self.state.lock();
        state.delta.n_edges() + state.pending.len() >= self.config.max_delta_edges
    }

    /// Every `(epoch, base_version)` pairing that was ever current,
    /// oldest first. A response claiming `(version, epoch)` is torn iff
    /// the pair is absent here.
    pub fn epoch_log(&self) -> Vec<(u64, u32)> {
        self.state.lock().epoch_log.clone()
    }

    /// Point-in-time ingest counters (see [`IngestStats`]).
    pub fn stats(&self) -> IngestStats {
        let live = {
            let state = self.state.lock();
            (state.delta.n_edges() + state.pending.len()) as u64
        };
        IngestStats {
            appends: self.appends.load(Ordering::Relaxed),
            delta_edges_live: live,
            compactions: self.compactions.load(Ordering::Relaxed),
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
        }
    }

    /// Compaction phase 1 — the **fold**: publish everything pending, mark
    /// the fold point (appends after it become the residual), and return
    /// the union dataset to rebuild from plus the folded edge count.
    ///
    /// Called by [`crate::Engine::compact_and_deploy`] under the
    /// compaction guard; queries keep serving base + full delta while the
    /// caller rebuilds outside every lock.
    pub(crate) fn begin_compaction(&self) -> (Dataset, usize) {
        let mut state = self.state.lock();
        self.publish_locked(&mut state);
        state.since_fold.clear();
        let folded = state.delta.n_edges();
        (union_dataset(&state.base, &state.delta), folded)
    }

    /// Compaction phase 2 — the **commit**: swap in the rebuilt base
    /// (already published to the model slot as `version` by the caller,
    /// atomically with this call under the store lock), replay the
    /// appends that raced the rebuild onto a fresh residual delta, and
    /// advance the epoch. Returns `(epoch, residual_edges)`.
    pub(crate) fn commit_compaction(&self, union: Dataset, version: u32) -> (u64, usize) {
        let mut state = self.state.lock();
        let mut residual = EdgeDelta::new(union.n_users(), union.n_items());
        for r in &state.since_fold {
            residual.insert(r.user, r.item, r.value, r.timestamp);
        }
        let remaining = residual.n_edges();
        state.base = union;
        state.delta = Arc::new(residual);
        state.pending.clear();
        state.base_version = version;
        state.epoch += 1;
        let entry = (state.epoch, version);
        state.epoch_log.push(entry);
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        (state.epoch, remaining)
    }

    /// The compaction guard: [`crate::Engine::compact_and_deploy`] holds
    /// it for its whole run so concurrent compactions of one store
    /// serialize instead of double-folding.
    pub(crate) fn lock_for_compaction(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.compaction.lock()
    }
}

/// The union of a base dataset and a delta: every rating of both, with
/// duplicate `(user, item)` pairs summed and their latest stamp kept —
/// exactly the merge semantics of [`longtail_core::OverlayGraph`], so a
/// model rebuilt from the union ranks identically to base + overlay.
fn union_dataset(base: &Dataset, delta: &EdgeDelta) -> Dataset {
    let n_users = base.n_users().max(delta.n_users());
    let n_items = base.n_items().max(delta.n_items());
    let mut ratings = base.to_timed_ratings();
    delta.for_each(|user, item, value, timestamp| {
        ratings.push(TimedRating {
            user,
            item,
            value,
            timestamp,
        });
    });
    Dataset::from_timed_ratings(n_users, n_items, &ratings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_data::Rating;

    fn base() -> Dataset {
        let ratings = [
            Rating {
                user: 0,
                item: 0,
                value: 5.0,
            },
            Rating {
                user: 1,
                item: 0,
                value: 4.0,
            },
            Rating {
                user: 1,
                item: 1,
                value: 5.0,
            },
        ];
        Dataset::from_ratings(2, 2, &ratings)
    }

    fn rating(user: u32, item: u32, value: f64, timestamp: f64) -> DeltaRating {
        DeltaRating {
            user,
            item,
            value,
            timestamp,
        }
    }

    #[test]
    fn appends_batch_in_pending_until_publish() {
        let store = DeltaStore::new(
            base(),
            DeltaConfig {
                publish_every: 100,
                ..DeltaConfig::default()
            },
        );
        assert_eq!(store.append(rating(0, 1, 3.0, 10.0)), 0, "still pending");
        assert!(store.snapshot().delta.is_empty());
        assert_eq!(store.publish(), 1);
        let snap = store.snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.delta.n_edges(), 1);
        // Publishing with nothing pending is a no-op epoch-wise.
        assert_eq!(store.publish(), 1);
    }

    #[test]
    fn auto_publish_fires_every_n_appends() {
        let store = DeltaStore::new(
            base(),
            DeltaConfig {
                publish_every: 2,
                ..DeltaConfig::default()
            },
        );
        assert_eq!(store.append(rating(0, 1, 3.0, 1.0)), 0);
        assert_eq!(store.append(rating(1, 0, 2.0, 2.0)), 1, "second fold");
        assert_eq!(store.snapshot().delta.n_edges(), 2);
    }

    #[test]
    fn snapshots_pin_their_epoch_across_later_publishes() {
        let store = DeltaStore::with_defaults(base());
        store.append(rating(0, 1, 3.0, 1.0));
        store.publish();
        let pinned = store.snapshot();
        store.append(rating(1, 0, 2.0, 2.0));
        store.publish();
        assert_eq!(pinned.epoch, 1);
        assert_eq!(pinned.delta.n_edges(), 1, "pin is immutable");
        assert_eq!(store.snapshot().delta.n_edges(), 2);
    }

    #[test]
    fn needs_compaction_counts_pending_too() {
        let store = DeltaStore::new(
            base(),
            DeltaConfig {
                publish_every: 100,
                max_delta_edges: 2,
            },
        );
        assert!(!store.needs_compaction());
        store.append(rating(0, 1, 3.0, 1.0));
        store.append(rating(1, 0, 2.0, 2.0));
        assert!(store.needs_compaction());
    }

    #[test]
    fn stats_count_appends_publishes_and_live_edges() {
        let store = DeltaStore::with_defaults(base());
        store.append_batch(&[rating(0, 1, 3.0, 1.0), rating(1, 0, 2.0, 2.0)]);
        store.publish();
        let s = store.stats();
        assert_eq!(s.appends, 2);
        assert_eq!(s.delta_edges_live, 2);
        assert_eq!(s.epochs_published, 1);
        assert_eq!(s.compactions, 0);
        let later = {
            store.append(rating(0, 1, 1.0, 3.0));
            store.stats()
        };
        let diff = later.since(&s);
        assert_eq!(diff.appends, 1);
        // Gauge semantics: the current live count, not a difference. The
        // re-rated pair collapses into the existing edge only at publish.
        assert_eq!(diff.delta_edges_live, 3);
    }

    #[test]
    fn union_dataset_sums_duplicates_and_keeps_latest_stamp() {
        let mut delta = EdgeDelta::new(2, 2);
        delta.insert(0, 0, 2.0, 50.0);
        delta.insert(1, 2, 5.0, 7.0); // new item grows the dims
        let union = union_dataset(&base(), &delta);
        assert_eq!(union.n_users(), 2);
        assert_eq!(union.n_items(), 3);
        let v = union.ratings_of(0).find(|&(i, _)| i == 0).unwrap().1;
        assert_eq!(v, 7.0, "base 5 + delta 2");
        assert_eq!(union.times().unwrap().get(0, 0), Some(50.0));
    }

    #[test]
    fn compaction_folds_then_commits_with_residual() {
        let store = DeltaStore::new(
            base(),
            DeltaConfig {
                publish_every: 100,
                ..DeltaConfig::default()
            },
        );
        store.append(rating(0, 1, 3.0, 1.0));
        let (union, folded) = store.begin_compaction();
        assert_eq!(folded, 1);
        assert_eq!(union.n_ratings(), 4);
        // An append racing the rebuild becomes the residual.
        store.append(rating(1, 0, 2.0, 2.0));
        let (epoch, remaining) = store.commit_compaction(union, 2);
        assert_eq!(remaining, 1);
        assert_eq!(store.base_version(), 2);
        let snap = store.snapshot();
        assert_eq!(snap.epoch, epoch);
        assert_eq!(snap.base_version, 2);
        assert_eq!(snap.delta.n_edges(), 1, "only the racing append remains");
        let log = store.epoch_log();
        assert!(log.contains(&(epoch, 2)));
        assert_eq!(store.stats().compactions, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_values_are_rejected() {
        DeltaStore::with_defaults(base()).append(rating(0, 0, 0.0, 0.0));
    }
}
