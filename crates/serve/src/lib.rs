//! # longtail-serve — the unified serving engine
//!
//! The serving layer over `longtail-core`'s recommenders, shaped for the
//! paper's deployment story (*Challenging the Long Tail Recommendation*,
//! Yin et al., VLDB 2012: many users, many algorithm variants, low
//! latency):
//!
//! * **Registry of named models** — one [`Engine`] owns every variant a
//!   deployment serves (`"HT"`, `"AC2"`, `"PureSVD"`, …) plus optional
//!   *user-sharded* groups (several graphs routed by a [`ShardRouter`]),
//!   so popularity-bias-aware deployments can pick which model answers
//!   per request instead of linking one model per binary.
//! * **Typed request surface** — [`RecommendRequest`] carries user, k,
//!   model name, an optional [`longtail_core::DpStopping`] override and a
//!   request-scoped exclusion set; [`RecommendResponse`] carries the list,
//!   the answering model + shard, and the request's
//!   [`longtail_core::DpTelemetry`].
//! * **Context pooling** — requests run in [`ContextPool`]-recycled
//!   [`longtail_core::ScoringContext`]s: no `O(n_nodes)` buffer setup per
//!   query, on any thread.
//! * **Persistent worker pool** — [`Engine::recommend_batch`] fans out
//!   over long-lived worker threads draining a channel queue, replacing
//!   the per-call scoped-thread spawning of
//!   [`longtail_core::Recommender::recommend_batch`] for sustained
//!   traffic.
//!
//! Engine output is pinned — by equivalence property tests — to be
//! identical (items, ranks, scores) to calling the routed recommender's
//! [`longtail_core::Recommender::recommend_into`] directly.

#![warn(missing_docs)]

mod engine;
mod pool;
mod request;
mod router;

pub use engine::{Engine, EngineBuilder, SharedRecommender};
pub use pool::ContextPool;
pub use request::{RecommendRequest, RecommendResponse, ServeError};
pub use router::{ModuloRouter, RangeRouter, ShardRouter};
