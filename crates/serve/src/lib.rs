//! # longtail-serve — the unified serving engine
//!
//! The serving layer over `longtail-core`'s recommenders, shaped for the
//! paper's deployment story (*Challenging the Long Tail Recommendation*,
//! Yin et al., VLDB 2012: many users, many algorithm variants, low
//! latency):
//!
//! * **Registry of named models** — one [`Engine`] owns every variant a
//!   deployment serves (`"HT"`, `"AC2"`, `"PureSVD"`, …) plus optional
//!   *user-sharded* groups (several graphs routed by a [`ShardRouter`]),
//!   so popularity-bias-aware deployments can pick which model answers
//!   per request instead of linking one model per binary.
//! * **Typed request surface** — [`RecommendRequest`] carries user, k,
//!   model name, an optional [`longtail_core::DpStopping`] override, a
//!   request-scoped exclusion set and an optional deadline;
//!   [`RecommendResponse`] carries the list, the answering model + shard,
//!   and the request's [`longtail_core::DpTelemetry`].
//! * **Async front-end** — [`Engine::submit`] enqueues without blocking
//!   and returns a [`PendingResponse`] handle
//!   (`try_recv`/`wait_timeout`/`wait`, no async runtime required); the
//!   **bounded admission queue** applies an explicit backpressure policy
//!   ([`AdmissionPolicy::Block`] / [`AdmissionPolicy::Reject`] /
//!   [`AdmissionPolicy::ShedOldest`] → [`ServeError::Overloaded`]), and
//!   per-request **deadlines** shed expired work at dequeue and cancel the
//!   walk DP cooperatively mid-query
//!   ([`ServeError::DeadlineExceeded`]). [`EngineStats`] counts it all.
//! * **QoS scheduling** — under the default [`SchedPolicy::Qos`] dequeue
//!   is no longer FIFO: requests carry a [`Priority`] class
//!   (`Interactive`/`Batch`/`Background`, strict priority across classes,
//!   earliest-deadline-first within one), **slack-based shedding** drops a
//!   request at dequeue when the EWMA of its model's observed service time
//!   proves the deadline unmeetable, and a per-model **admission quota**
//!   ([`EngineBuilder::model_quota`]) stops one hot model's burst from
//!   occupying the whole queue. [`EngineStats::per_class`] ledgers each
//!   class (submitted/served/shed/expired plus a fixed-bucket latency
//!   histogram with p50/p99), and the scheduler only ever reorders or
//!   sheds — a served ranking is identical to the blocking path's.
//! * **Context pooling** — requests run in [`ContextPool`]-recycled
//!   [`longtail_core::ScoringContext`]s: no `O(n_nodes)` buffer setup per
//!   query, on any thread.
//! * **Persistent worker pool** — submissions drain through long-lived
//!   worker threads; [`Engine::recommend_batch`] is fan-out over
//!   [`Engine::submit`] plus an in-order drain, and engine drop cancels
//!   the queued backlog so shutdown is bounded-time.
//! * **Fault tolerance (opt-in)** — [`EngineBuilder::breakers`] arms a
//!   **circuit breaker** per model/shard (rolling failure window over
//!   panics, poisoned scores and in-DP deadline expiries;
//!   Closed→Open→HalfOpen; open breakers fail fast with
//!   [`ServeError::CircuitOpen`] before any queue slot or context is
//!   spent), [`RetryPolicy`] retries model faults on fresh contexts within
//!   the deadline, and [`EngineBuilder::fallback`] serves unavailable
//!   primaries from a registered stand-in (e.g. the popularity baseline)
//!   with [`RecommendResponse::degraded`] set. Worker threads are
//!   supervised — dead ones respawn — and [`Engine::health`] snapshots
//!   breaker states, queue depth and worker liveness. The deterministic
//!   [`FaultPlan`]/[`FaultyRecommender`] harness drives all of it in
//!   chaos tests and the `fault_tolerance` bench section.
//!
//! * **Streaming ingest (opt-in)** — attach a [`DeltaStore`]
//!   ([`EngineBuilder::ingest`]) and the model's requests serve **base +
//!   delta overlay**: appended `(user, item, weight, timestamp)` ratings
//!   become visible at published **epochs** without rebuilding the base,
//!   every response names the `(version, epoch)` pair it scored at, and
//!   [`Engine::compact_and_deploy`] periodically folds the delta into a
//!   freshly built base published through the hot-swap deploy path —
//!   in-flight queries stay pinned to their epoch, zero lost requests.
//!
//! Engine output is pinned — by equivalence property tests — to be
//! identical (items, ranks, scores) to calling the routed recommender's
//! [`longtail_core::Recommender::recommend_into`] directly, for every
//! request the engine answers non-degraded; requests dropped by
//! backpressure or deadlines fail typed, and fallback answers are flagged
//! degraded — nothing degrades silently.

#![warn(missing_docs)]

mod breaker;
mod engine;
mod faults;
mod ingest;
mod pool;
mod queue;
mod request;
mod router;
mod sched;
mod submit;

pub use breaker::{BreakerConfig, BreakerState};
pub use engine::{
    Engine, EngineBuilder, EngineHealth, ModelHealth, ModelProvenance, SharedRecommender,
    VersionRecord,
};
pub use faults::{FaultKind, FaultPlan, FaultyRecommender, WORKER_KILL_MARK};
pub use ingest::{
    CompactionReport, DeltaConfig, DeltaRating, DeltaSnapshot, DeltaStore, IngestStats,
};
pub use pool::ContextPool;
pub use queue::AdmissionPolicy;
pub use request::{RecommendRequest, RecommendResponse, RetryPolicy, ServeError};
pub use router::{ModuloRouter, RangeRouter, ShardRouter};
pub use sched::{latency_bucket_bound, latency_quantile, Priority, SchedPolicy, LATENCY_BUCKETS};
pub use submit::{ClassStats, EngineStats, PendingResponse};
