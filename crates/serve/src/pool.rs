//! A checkout/checkin pool of [`ScoringContext`]s.
//!
//! Scoring contexts are where all per-query scratch lives; warming one up
//! costs `O(n_nodes)` in buffer growth. The engine therefore never builds a
//! context per request — it checks one out of this pool, serves, and checks
//! it back in, so steady-state requests run entirely in recycled buffers no
//! matter which caller thread (or pool worker) they arrive on.

use longtail_core::ScoringContext;
use parking_lot::Mutex;

/// A bounded stack of idle [`ScoringContext`]s.
///
/// Checkout pops the most recently returned context (the one with the
/// warmest buffers); an empty pool hands out a fresh context instead of
/// blocking, so the pool bounds only *retained* memory, never concurrency.
#[derive(Debug, Default)]
pub struct ContextPool {
    idle: Mutex<Vec<ScoringContext>>,
    max_idle: usize,
}

impl ContextPool {
    /// A pool retaining at most `max_idle` idle contexts (further checkins
    /// drop their context, releasing its buffers).
    pub fn new(max_idle: usize) -> Self {
        Self {
            idle: Mutex::new(Vec::with_capacity(max_idle.min(64))),
            max_idle,
        }
    }

    /// Take a context — a recycled one when available, otherwise fresh.
    pub fn checkout(&self) -> ScoringContext {
        self.idle.lock().pop().unwrap_or_default()
    }

    /// Return a context to the pool for reuse.
    pub fn checkin(&self, ctx: ScoringContext) {
        let mut idle = self.idle.lock();
        if idle.len() < self.max_idle {
            idle.push(ctx);
        }
    }

    /// Number of idle contexts currently retained.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_up_to_capacity() {
        let pool = ContextPool::new(2);
        assert_eq!(pool.idle_count(), 0);

        let mut a = pool.checkout();
        a.reset_dp_telemetry();
        pool.checkin(a);
        assert_eq!(pool.idle_count(), 1);

        // The recycled context comes back out...
        let b = pool.checkout();
        assert_eq!(pool.idle_count(), 0);

        // ...and checkins beyond capacity are dropped.
        pool.checkin(b);
        pool.checkin(ScoringContext::new());
        pool.checkin(ScoringContext::new());
        assert_eq!(pool.idle_count(), 2);
    }

    #[test]
    fn empty_pool_hands_out_fresh_contexts() {
        let pool = ContextPool::new(0);
        let ctx = pool.checkout();
        pool.checkin(ctx);
        assert_eq!(pool.idle_count(), 0, "max_idle 0 retains nothing");
    }
}
