//! The bounded admission queue feeding the engine's worker pool.
//!
//! This is the backpressure *and scheduling* point of the async front-end:
//! submissions pass through a capacity-bounded queue whose full-queue
//! behaviour is the engine's [`AdmissionPolicy`] and whose dequeue order is
//! the engine's [`SchedPolicy`] — literal arrival order under
//! [`SchedPolicy::Fifo`], strict [`crate::Priority`] classes with
//! earliest-deadline-first ordering inside each class under
//! [`SchedPolicy::Qos`]. An optional per-model admission quota caps how
//! many waiting jobs any one model may hold, so a hot model's burst cannot
//! occupy the whole queue and starve every other model behind it.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot` stub
//! deliberately exposes only `Mutex`): two condition variables —
//! `not_empty` wakes idle workers, `not_full` wakes blocked submitters —
//! and a closed flag that turns both waits into immediate returns at
//! shutdown. The admitted set is small by construction (at most
//! `capacity` jobs), so dequeue and victim selection are O(capacity)
//! scans instead of a heap — no allocation, no ordering invariant to
//! maintain across mid-queue removals.

use crate::request::{RecommendRequest, RecommendResponse, ServeError};
use crate::sched::SchedPolicy;
use std::cmp::Ordering;
use std::sync::{mpsc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// What [`crate::Engine::submit`] does when the admission queue is full —
/// the engine's backpressure policy, set by
/// [`crate::EngineBuilder::admission`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Wait for a queue slot: `submit` blocks until a worker drains one
    /// (closed-loop producers; the default, and the policy under which
    /// fan-out batches behave exactly like the blocking batch API).
    #[default]
    Block,
    /// Refuse the new request: `submit` returns
    /// [`ServeError::Overloaded`] without blocking (open-loop producers
    /// that would rather drop than queue).
    Reject,
    /// Admit the new request by shedding the queued one most *past caring*
    /// — its deadline already gone or nearest, lowest priority class and
    /// oldest submission as tie breaks — whose [`crate::PendingResponse`]
    /// resolves to [`ServeError::Overloaded`]. `submit` never blocks and
    /// fresh traffic is never refused. When the full queue holds no
    /// deadlines at all, the victim degrades to the oldest queued request.
    ShedOldest,
}

/// One queued unit of work: a request plus the one-shot reply channel its
/// [`crate::PendingResponse`] is waiting on.
pub(crate) struct Job {
    pub(crate) request: RecommendRequest,
    pub(crate) reply: mpsc::Sender<Result<RecommendResponse, ServeError>>,
    /// When the job entered the queue — the base of the per-class latency
    /// histogram (submit → response, queueing included).
    pub(crate) enqueued_at: Instant,
    /// Admission order, assigned by the queue under its lock: the FIFO key,
    /// and the final tie break of every scheduling comparison.
    pub(crate) seq: u64,
}

impl Job {
    pub(crate) fn new(
        request: RecommendRequest,
        reply: mpsc::Sender<Result<RecommendResponse, ServeError>>,
    ) -> Self {
        Self {
            request,
            reply,
            enqueued_at: Instant::now(),
            seq: 0,
        }
    }

    /// Resolve this job without serving it (shed / cancelled). A dead
    /// receiver just means nobody is waiting any more.
    pub(crate) fn refuse(self, error: ServeError) {
        let _ = self.reply.send(Err(error));
    }
}

/// Deadlined jobs before deadline-free ones, earlier deadlines first.
fn deadline_order(a: &Job, b: &Job) -> Ordering {
    match (a.request.deadline, b.request.deadline) {
        (Some(x), Some(y)) => x.cmp(&y),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => Ordering::Equal,
    }
}

/// Dequeue order under [`SchedPolicy::Qos`]: strict priority class, EDF
/// within the class, submission order as the tie break.
fn qos_order(a: &Job, b: &Job) -> Ordering {
    a.request
        .priority
        .index()
        .cmp(&b.request.priority.index())
        .then_with(|| deadline_order(a, b))
        .then(a.seq.cmp(&b.seq))
}

/// Shed-victim order: the job most past caring first — deadline already
/// gone or nearest (deadline-free jobs only after every deadlined one),
/// then the *lowest* priority class, then the oldest submission. With no
/// deadlines and one class this degrades to plain oldest-first.
fn victim_order(a: &Job, b: &Job) -> Ordering {
    deadline_order(a, b)
        .then_with(|| b.request.priority.index().cmp(&a.request.priority.index()))
        .then(a.seq.cmp(&b.seq))
}

struct QueueState {
    jobs: Vec<Job>,
    /// Cleared exactly once, at engine shutdown.
    open: bool,
    /// Next admission sequence number (monotone, assigned under the lock).
    next_seq: u64,
}

impl QueueState {
    fn model_depth(&self, model: &str) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.request.model == model)
            .count()
    }

    /// Index of the shed victim among `jobs`, restricted to `model`'s jobs
    /// when the binding limit is a per-model quota.
    fn victim_index(&self, model: Option<&str>) -> Option<usize> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| model.is_none_or(|m| j.request.model == m))
            .min_by(|(_, a), (_, b)| victim_order(a, b))
            .map(|(i, _)| i)
    }
}

/// How a submission entered (or failed to enter) the queue.
pub(crate) enum Admission {
    /// The job is queued; a worker will pick it up in scheduling order.
    Enqueued,
    /// The job is queued and the returned victim job was shed to make room
    /// ([`AdmissionPolicy::ShedOldest`]); the caller resolves the victim.
    /// Boxed: a `Job` carries a full request, and the shed path is the
    /// rare one — keeping the other variants a pointer wide keeps every
    /// admission return cheap.
    Shed(Box<Job>),
    /// The queue (or the job's model quota) was full and
    /// [`AdmissionPolicy::Reject`] refused the job (dropped here; the
    /// submitter still holds the reply receiver).
    Rejected,
    /// The queue is closed (engine shutting down); the job was dropped.
    Closed,
}

/// A closed-capacity scheduling queue of [`Job`]s shared by submitters and
/// workers.
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    sched: SchedPolicy,
    /// Per-model cap on waiting jobs; `None` disables quotas.
    quota: Option<usize>,
}

impl JobQueue {
    /// An open queue admitting at most `capacity` *waiting* jobs (jobs a
    /// worker has already dequeued don't count against it), dequeued in
    /// `sched` order, with at most `quota` of them per model when set.
    pub(crate) fn new(capacity: usize, sched: SchedPolicy, quota: Option<usize>) -> Self {
        assert!(capacity > 0, "a zero-capacity queue could admit nothing");
        assert!(
            quota.is_none_or(|q| q > 0),
            "a zero quota could admit nothing for any model"
        );
        Self {
            state: Mutex::new(QueueState {
                jobs: Vec::new(),
                open: true,
                next_seq: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            sched,
            quota,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        // Poisoning is impossible in practice (no lock-holding code path
        // panics: request panics are caught inside `execute`, outside any
        // queue lock) — recover the guard rather than propagating.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn enqueue_locked(&self, state: &mut QueueState, mut job: Job) {
        job.seq = state.next_seq;
        state.next_seq += 1;
        state.jobs.push(job);
        self.not_empty.notify_one();
    }

    /// Admit `job` under `policy`. Only [`AdmissionPolicy::Block`] can
    /// block, and only while the queue is open and either full or at the
    /// job's model quota.
    pub(crate) fn push(&self, job: Job, policy: AdmissionPolicy) -> Admission {
        let mut state = self.lock();
        loop {
            if !state.open {
                drop(job);
                return Admission::Closed;
            }
            // The per-model quota binds first: a model at its quota is
            // "full" for this job even when the queue has room, so one hot
            // model's burst cannot occupy every slot.
            let over_quota = self
                .quota
                .is_some_and(|q| state.model_depth(&job.request.model) >= q);
            if !over_quota && state.jobs.len() < self.capacity {
                self.enqueue_locked(&mut state, job);
                return Admission::Enqueued;
            }
            match policy {
                AdmissionPolicy::Block => {
                    state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                AdmissionPolicy::Reject => {
                    drop(job);
                    return Admission::Rejected;
                }
                AdmissionPolicy::ShedOldest => {
                    // Victim scope is the saturated dimension: the same
                    // model's jobs when its quota binds (evicting another
                    // model would not make this one admissible), the whole
                    // queue otherwise.
                    let scope = over_quota.then_some(job.request.model.as_str());
                    let idx = state
                        .victim_index(scope)
                        .expect("a saturated dimension holds at least one job");
                    let victim = state.jobs.remove(idx);
                    self.enqueue_locked(&mut state, job);
                    // Occupancy is unchanged (one out, one in): no
                    // not_full wakeup.
                    return Admission::Shed(Box::new(victim));
                }
            }
        }
    }

    /// Next job in the queue's [`SchedPolicy`] order, blocking while the
    /// queue is empty but open. `None` means the queue is closed and
    /// drained: the worker exits.
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut state = self.lock();
        loop {
            let next = match self.sched {
                SchedPolicy::Fifo => state
                    .jobs
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, j)| j.seq)
                    .map(|(i, _)| i),
                SchedPolicy::Qos => state
                    .jobs
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| qos_order(a, b))
                    .map(|(i, _)| i),
            };
            if let Some(idx) = next {
                let job = state.jobs.remove(idx);
                // notify_all, not notify_one: with per-model quotas "room"
                // is model-dependent, and the one blocked submitter a
                // notify_one happens to wake may still be over its quota
                // and sleep again while a different model's submitter
                // could have proceeded.
                self.not_full.notify_all();
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue and return every not-yet-started job, waking all
    /// blocked submitters (they observe `Closed`) and all idle workers
    /// (they observe the drained close and exit). This is what makes
    /// engine drop bounded-time: teardown cancels the backlog instead of
    /// serving it.
    pub(crate) fn close_and_drain(&self) -> Vec<Job> {
        let mut state = self.lock();
        state.open = false;
        let drained = state.jobs.drain(..).collect();
        self.not_empty.notify_all();
        self.not_full.notify_all();
        drained
    }

    /// Number of jobs currently waiting (diagnostics / tests).
    pub(crate) fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Waiting jobs per priority class (indexed by
    /// [`crate::Priority::index`]).
    pub(crate) fn depth_by_class(&self) -> [usize; crate::Priority::COUNT] {
        let state = self.lock();
        let mut depths = [0; crate::Priority::COUNT];
        for job in &state.jobs {
            depths[job.request.priority.index()] += 1;
        }
        depths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Priority;
    use std::time::Duration;

    fn job(user: u32) -> (Job, mpsc::Receiver<Result<RecommendResponse, ServeError>>) {
        let (reply, rx) = mpsc::channel();
        (Job::new(RecommendRequest::new("m", user, 1), reply), rx)
    }

    fn job_with(
        request: RecommendRequest,
    ) -> (Job, mpsc::Receiver<Result<RecommendResponse, ServeError>>) {
        let (reply, rx) = mpsc::channel();
        (Job::new(request, reply), rx)
    }

    #[test]
    fn fifo_order_and_capacity() {
        let q = JobQueue::new(2, SchedPolicy::Fifo, None);
        let (a, _ra) = job(0);
        let (b, _rb) = job(1);
        assert!(matches!(
            q.push(a, AdmissionPolicy::Reject),
            Admission::Enqueued
        ));
        assert!(matches!(
            q.push(b, AdmissionPolicy::Reject),
            Admission::Enqueued
        ));
        assert_eq!(q.depth(), 2);
        let (c, _rc) = job(2);
        assert!(matches!(
            q.push(c, AdmissionPolicy::Reject),
            Admission::Rejected
        ));
        // No deadlines, one class: the shed victim degrades to the oldest
        // queued job (user 0) and the new job is admitted.
        let (c, _rc) = job(2);
        let Admission::Shed(victim) = q.push(c, AdmissionPolicy::ShedOldest) else {
            panic!("full queue must shed");
        };
        assert_eq!(victim.request.user, 0);
        assert_eq!(q.pop().unwrap().request.user, 1);
        assert_eq!(q.pop().unwrap().request.user, 2);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn qos_pop_is_strict_priority_then_edf_then_fifo() {
        let q = JobQueue::new(8, SchedPolicy::Qos, None);
        let far = Instant::now() + Duration::from_secs(3600);
        let near = Instant::now() + Duration::from_secs(60);
        // Arrival order deliberately scrambled against service order.
        let (bg, _r0) =
            job_with(RecommendRequest::new("m", 0, 1).with_priority(Priority::Background));
        let (batch_near, _r1) = job_with(
            RecommendRequest::new("m", 1, 1)
                .with_priority(Priority::Batch)
                .deadline_at(near),
        );
        let (int_far, _r2) = job_with(RecommendRequest::new("m", 2, 1).deadline_at(far));
        let (int_near, _r3) = job_with(RecommendRequest::new("m", 3, 1).deadline_at(near));
        let (int_nodeadline, _r4) = job_with(RecommendRequest::new("m", 4, 1));
        for j in [bg, batch_near, int_far, int_near, int_nodeadline] {
            assert!(matches!(
                q.push(j, AdmissionPolicy::Block),
                Admission::Enqueued
            ));
        }
        // Interactive first (EDF inside: near, far, then no-deadline),
        // then Batch, then Background.
        let order: Vec<u32> = (0..5).map(|_| q.pop().unwrap().request.user).collect();
        assert_eq!(order, vec![3, 2, 4, 1, 0]);
    }

    #[test]
    fn fifo_policy_ignores_priorities_and_deadlines() {
        let q = JobQueue::new(4, SchedPolicy::Fifo, None);
        let near = Instant::now() + Duration::from_millis(1);
        let (a, _ra) =
            job_with(RecommendRequest::new("m", 0, 1).with_priority(Priority::Background));
        let (b, _rb) = job_with(RecommendRequest::new("m", 1, 1).deadline_at(near));
        q.push(a, AdmissionPolicy::Block);
        q.push(b, AdmissionPolicy::Block);
        assert_eq!(q.pop().unwrap().request.user, 0, "arrival order only");
        assert_eq!(q.pop().unwrap().request.user, 1);
    }

    /// Regression test for the doc'd ShedOldest contract: the victim is
    /// the job most past caring — deadline gone or nearest — not simply
    /// the FIFO front.
    #[test]
    fn shed_victim_is_nearest_deadline_not_fifo_front() {
        let q = JobQueue::new(3, SchedPolicy::Qos, None);
        let now = Instant::now();
        // Oldest job has the *farthest* deadline; the middle one is
        // already expired.
        let (a, _ra) =
            job_with(RecommendRequest::new("m", 0, 1).deadline_at(now + Duration::from_secs(3600)));
        let (b, _rb) =
            job_with(RecommendRequest::new("m", 1, 1).deadline_at(now - Duration::from_secs(1)));
        let (c, _rc) =
            job_with(RecommendRequest::new("m", 2, 1).deadline_at(now + Duration::from_secs(60)));
        for j in [a, b, c] {
            assert!(matches!(
                q.push(j, AdmissionPolicy::Block),
                Admission::Enqueued
            ));
        }
        let (d, _rd) = job_with(RecommendRequest::new("m", 3, 1));
        let Admission::Shed(victim) = q.push(d, AdmissionPolicy::ShedOldest) else {
            panic!("full queue must shed");
        };
        assert_eq!(
            victim.request.user, 1,
            "the expired job pays, not the front"
        );
        // Next victim: nearest live deadline; deadline-free jobs only last.
        let (e, _re) = job_with(RecommendRequest::new("m", 4, 1));
        let Admission::Shed(victim) = q.push(e, AdmissionPolicy::ShedOldest) else {
            panic!("full queue must shed");
        };
        assert_eq!(victim.request.user, 2, "nearest deadline next");
    }

    #[test]
    fn shed_victim_prefers_lower_class_on_deadline_ties() {
        let q = JobQueue::new(2, SchedPolicy::Qos, None);
        let (a, _ra) = job_with(RecommendRequest::new("m", 0, 1)); // Interactive, older
        let (b, _rb) =
            job_with(RecommendRequest::new("m", 1, 1).with_priority(Priority::Background));
        q.push(a, AdmissionPolicy::Block);
        q.push(b, AdmissionPolicy::Block);
        let (c, _rc) = job_with(RecommendRequest::new("m", 2, 1));
        let Admission::Shed(victim) = q.push(c, AdmissionPolicy::ShedOldest) else {
            panic!("full queue must shed");
        };
        assert_eq!(victim.request.user, 1, "Background pays before Interactive");
    }

    #[test]
    fn model_quota_caps_one_model_without_filling_the_queue() {
        let q = JobQueue::new(8, SchedPolicy::Qos, Some(2));
        let (a, _ra) = job_with(RecommendRequest::new("hot", 0, 1));
        let (b, _rb) = job_with(RecommendRequest::new("hot", 1, 1));
        q.push(a, AdmissionPolicy::Reject);
        q.push(b, AdmissionPolicy::Reject);
        // The hot model is at quota: Reject refuses its next job even
        // though the queue has room…
        let (c, _rc) = job_with(RecommendRequest::new("hot", 2, 1));
        assert!(matches!(
            q.push(c, AdmissionPolicy::Reject),
            Admission::Rejected
        ));
        // …while another model still enters freely.
        let (d, _rd) = job_with(RecommendRequest::new("cold", 3, 1));
        assert!(matches!(
            q.push(d, AdmissionPolicy::Reject),
            Admission::Enqueued
        ));
        assert_eq!(q.depth(), 3);
        // ShedOldest under a binding quota evicts within the same model:
        // the cold model's job survives.
        let (e, _re) = job_with(RecommendRequest::new("hot", 4, 1));
        let Admission::Shed(victim) = q.push(e, AdmissionPolicy::ShedOldest) else {
            panic!("quota-full model must shed its own job");
        };
        assert_eq!(victim.request.model, "hot");
        assert_eq!(victim.request.user, 0, "oldest hot job pays");
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn quota_blocked_submitter_wakes_when_its_model_drains() {
        let q = std::sync::Arc::new(JobQueue::new(8, SchedPolicy::Qos, Some(1)));
        let (a, _ra) = job_with(RecommendRequest::new("hot", 0, 1));
        assert!(matches!(
            q.push(a, AdmissionPolicy::Block),
            Admission::Enqueued
        ));
        let q2 = std::sync::Arc::clone(&q);
        let submitter = std::thread::spawn(move || {
            let (b, _rb) = job_with(RecommendRequest::new("hot", 1, 1));
            matches!(q2.push(b, AdmissionPolicy::Block), Admission::Enqueued)
        });
        // Popping the hot job frees the quota; the submitter must wake.
        assert_eq!(q.pop().unwrap().request.user, 0);
        assert!(submitter.join().unwrap());
        assert_eq!(q.pop().unwrap().request.user, 1);
    }

    #[test]
    fn depth_by_class_counts_waiting_jobs() {
        let q = JobQueue::new(8, SchedPolicy::Qos, None);
        let (a, _ra) = job_with(RecommendRequest::new("m", 0, 1));
        let (b, _rb) = job_with(RecommendRequest::new("m", 1, 1).with_priority(Priority::Batch));
        let (c, _rc) = job_with(RecommendRequest::new("m", 2, 1).with_priority(Priority::Batch));
        q.push(a, AdmissionPolicy::Block);
        q.push(b, AdmissionPolicy::Block);
        q.push(c, AdmissionPolicy::Block);
        assert_eq!(q.depth_by_class(), [1, 2, 0]);
    }

    #[test]
    fn close_drains_and_unblocks() {
        let q = JobQueue::new(1, SchedPolicy::Qos, None);
        let (a, ra) = job(7);
        assert!(matches!(
            q.push(a, AdmissionPolicy::Block),
            Admission::Enqueued
        ));
        let drained = q.close_and_drain();
        assert_eq!(drained.len(), 1);
        for j in drained {
            j.refuse(ServeError::ShuttingDown);
        }
        assert_eq!(ra.recv().unwrap(), Err(ServeError::ShuttingDown));
        // Closed queue: pop returns None, push observes Closed.
        assert!(q.pop().is_none());
        let (b, _rb) = job(8);
        assert!(matches!(
            q.push(b, AdmissionPolicy::Block),
            Admission::Closed
        ));
    }

    #[test]
    fn blocked_submitter_wakes_when_a_worker_drains() {
        let q = std::sync::Arc::new(JobQueue::new(1, SchedPolicy::Qos, None));
        let (a, _ra) = job(0);
        assert!(matches!(
            q.push(a, AdmissionPolicy::Block),
            Admission::Enqueued
        ));
        let q2 = std::sync::Arc::clone(&q);
        let submitter = std::thread::spawn(move || {
            let (b, _rb) = job(1);
            matches!(q2.push(b, AdmissionPolicy::Block), Admission::Enqueued)
        });
        // Drain one slot; the blocked submitter must complete.
        assert_eq!(q.pop().unwrap().request.user, 0);
        assert!(submitter.join().unwrap());
        assert_eq!(q.pop().unwrap().request.user, 1);
    }
}
