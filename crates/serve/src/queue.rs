//! The bounded admission queue feeding the engine's worker pool.
//!
//! This is the backpressure point of the async front-end: submissions pass
//! through a capacity-bounded FIFO whose full-queue behaviour is the
//! engine's [`AdmissionPolicy`]. Built on `std::sync::{Mutex, Condvar}`
//! (the vendored `parking_lot` stub deliberately exposes only `Mutex`):
//! two condition variables — `not_empty` wakes idle workers, `not_full`
//! wakes blocked submitters — and a closed flag that turns both waits into
//! immediate returns at shutdown.

use crate::request::{RecommendRequest, RecommendResponse, ServeError};
use std::collections::VecDeque;
use std::sync::{mpsc, Condvar, Mutex, MutexGuard};

/// What [`crate::Engine::submit`] does when the admission queue is full —
/// the engine's backpressure policy, set by
/// [`crate::EngineBuilder::admission`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Wait for a queue slot: `submit` blocks until a worker drains one
    /// (closed-loop producers; the default, and the policy under which
    /// fan-out batches behave exactly like the blocking batch API).
    #[default]
    Block,
    /// Refuse the new request: `submit` returns
    /// [`ServeError::Overloaded`] without blocking (open-loop producers
    /// that would rather drop than queue).
    Reject,
    /// Admit the new request by shedding the *oldest* queued one, whose
    /// [`crate::PendingResponse`] resolves to [`ServeError::Overloaded`].
    /// `submit` never blocks and fresh traffic is never refused — the
    /// stalest waiter pays, which under overload is the request most
    /// likely past caring (its deadline nearest or gone).
    ShedOldest,
}

/// One queued unit of work: a request plus the one-shot reply channel its
/// [`crate::PendingResponse`] is waiting on.
pub(crate) struct Job {
    pub(crate) request: RecommendRequest,
    pub(crate) reply: mpsc::Sender<Result<RecommendResponse, ServeError>>,
}

impl Job {
    /// Resolve this job without serving it (shed / cancelled). A dead
    /// receiver just means nobody is waiting any more.
    pub(crate) fn refuse(self, error: ServeError) {
        let _ = self.reply.send(Err(error));
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Cleared exactly once, at engine shutdown.
    open: bool,
}

/// How a submission entered (or failed to enter) the queue.
pub(crate) enum Admission {
    /// The job is queued; a worker will pick it up in FIFO order.
    Enqueued,
    /// The job is queued and the returned oldest job was shed to make room
    /// ([`AdmissionPolicy::ShedOldest`]); the caller resolves the victim.
    Shed(Job),
    /// The queue was full and [`AdmissionPolicy::Reject`] refused the job
    /// (dropped here; the submitter still holds the reply receiver).
    Rejected,
    /// The queue is closed (engine shutting down); the job was dropped.
    Closed,
}

/// A closed-capacity FIFO of [`Job`]s shared by submitters and workers.
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// An open queue admitting at most `capacity` *waiting* jobs (jobs a
    /// worker has already dequeued don't count against it).
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue could admit nothing");
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        // Poisoning is impossible in practice (no lock-holding code path
        // panics: request panics are caught inside `execute`, outside any
        // queue lock) — recover the guard rather than propagating.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admit `job` under `policy`. Only [`AdmissionPolicy::Block`] can
    /// block, and only while the queue is both full and open.
    pub(crate) fn push(&self, job: Job, policy: AdmissionPolicy) -> Admission {
        let mut state = self.lock();
        loop {
            if !state.open {
                drop(job);
                return Admission::Closed;
            }
            if state.jobs.len() < self.capacity {
                state.jobs.push_back(job);
                self.not_empty.notify_one();
                return Admission::Enqueued;
            }
            match policy {
                AdmissionPolicy::Block => {
                    state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                AdmissionPolicy::Reject => {
                    drop(job);
                    return Admission::Rejected;
                }
                AdmissionPolicy::ShedOldest => {
                    let victim = state.jobs.pop_front().expect("full queue has a front");
                    state.jobs.push_back(job);
                    // Queue length is unchanged (still full): no not_full
                    // wakeup. The new job keeps FIFO order at the back.
                    self.not_empty.notify_one();
                    return Admission::Shed(victim);
                }
            }
        }
    }

    /// Next job in FIFO order, blocking while the queue is empty but open.
    /// `None` means the queue is closed and drained: the worker exits.
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue and return every not-yet-started job, waking all
    /// blocked submitters (they observe `Closed`) and all idle workers
    /// (they observe the drained close and exit). This is what makes
    /// engine drop bounded-time: teardown cancels the backlog instead of
    /// serving it.
    pub(crate) fn close_and_drain(&self) -> Vec<Job> {
        let mut state = self.lock();
        state.open = false;
        let drained = state.jobs.drain(..).collect();
        self.not_empty.notify_all();
        self.not_full.notify_all();
        drained
    }

    /// Number of jobs currently waiting (diagnostics / tests).
    pub(crate) fn depth(&self) -> usize {
        self.lock().jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(user: u32) -> (Job, mpsc::Receiver<Result<RecommendResponse, ServeError>>) {
        let (reply, rx) = mpsc::channel();
        (
            Job {
                request: RecommendRequest::new("m", user, 1),
                reply,
            },
            rx,
        )
    }

    #[test]
    fn fifo_order_and_capacity() {
        let q = JobQueue::new(2);
        let (a, _ra) = job(0);
        let (b, _rb) = job(1);
        assert!(matches!(
            q.push(a, AdmissionPolicy::Reject),
            Admission::Enqueued
        ));
        assert!(matches!(
            q.push(b, AdmissionPolicy::Reject),
            Admission::Enqueued
        ));
        assert_eq!(q.depth(), 2);
        let (c, _rc) = job(2);
        assert!(matches!(
            q.push(c, AdmissionPolicy::Reject),
            Admission::Rejected
        ));
        // ShedOldest drops the front (user 0) and admits the new job.
        let (c, _rc) = job(2);
        let Admission::Shed(victim) = q.push(c, AdmissionPolicy::ShedOldest) else {
            panic!("full queue must shed");
        };
        assert_eq!(victim.request.user, 0);
        assert_eq!(q.pop().unwrap().request.user, 1);
        assert_eq!(q.pop().unwrap().request.user, 2);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn close_drains_and_unblocks() {
        let q = JobQueue::new(1);
        let (a, ra) = job(7);
        assert!(matches!(
            q.push(a, AdmissionPolicy::Block),
            Admission::Enqueued
        ));
        let drained = q.close_and_drain();
        assert_eq!(drained.len(), 1);
        for j in drained {
            j.refuse(ServeError::ShuttingDown);
        }
        assert_eq!(ra.recv().unwrap(), Err(ServeError::ShuttingDown));
        // Closed queue: pop returns None, push observes Closed.
        assert!(q.pop().is_none());
        let (b, _rb) = job(8);
        assert!(matches!(
            q.push(b, AdmissionPolicy::Block),
            Admission::Closed
        ));
    }

    #[test]
    fn blocked_submitter_wakes_when_a_worker_drains() {
        let q = std::sync::Arc::new(JobQueue::new(1));
        let (a, _ra) = job(0);
        assert!(matches!(
            q.push(a, AdmissionPolicy::Block),
            Admission::Enqueued
        ));
        let q2 = std::sync::Arc::clone(&q);
        let submitter = std::thread::spawn(move || {
            let (b, _rb) = job(1);
            matches!(q2.push(b, AdmissionPolicy::Block), Admission::Enqueued)
        });
        // Drain one slot; the blocked submitter must complete.
        assert_eq!(q.pop().unwrap().request.user, 0);
        assert!(submitter.join().unwrap());
        assert_eq!(q.pop().unwrap().request.user, 1);
    }
}
