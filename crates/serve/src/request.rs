//! The typed request/response surface of the serving engine.

use crate::sched::Priority;
use longtail_core::{
    DpStopping, DpTelemetry, ExclusionSet, ItemProvenance, RecencyDecay, RerankPolicy, ScoredItem,
};

/// Bounded in-place retry of failed attempts, configured per request
/// ([`RecommendRequest::with_retry`]) or engine-wide
/// ([`crate::EngineBuilder::default_retry`]; the request wins).
///
/// Only *model faults* are retried — a caught query panic or a
/// NaN/−∞-poisoned response ([`ServeError::PoisonedScores`]) — each retry
/// on a **fresh** [`longtail_core::ScoringContext`], since the one a panic
/// unwound through is discarded as poisoned. Deadline expiries, unknown
/// models and open breakers are never retried: the first is already out of
/// time and the others cannot change between attempts. A retry must
/// *start* before the request's deadline — after it, the attempt is
/// abandoned (an answer past the deadline is useless at full cost); when
/// the backoff pause itself would not fit in the remaining time, the retry
/// runs immediately instead, since the walk DP cancels cooperatively
/// mid-flight if the deadline then expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first included (so `max_attempts: 1` means "no
    /// retries" and is what `Default` gives).
    pub max_attempts: u32,
    /// Pause before each retry (constant; attempt 2 and later).
    pub backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            backoff: std::time::Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// Up to `max_attempts` total attempts with no pause between them.
    pub fn attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            backoff: std::time::Duration::ZERO,
        }
    }

    /// Set the pause inserted before each retry.
    pub fn with_backoff(mut self, backoff: std::time::Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

/// One top-k recommendation request against an [`crate::Engine`].
///
/// Everything per-call is here, typed: which registered model answers,
/// the list length, an optional stopping-policy override and a
/// request-scoped exclusion set. Build with [`RecommendRequest::new`] and
/// customize via the builder methods:
///
/// ```
/// use longtail_serve::RecommendRequest;
/// use longtail_core::DpStopping;
///
/// let req = RecommendRequest::new("AC2", 42, 10)
///     .with_stopping(DpStopping::Fixed)
///     .excluding(vec![7, 3, 7]); // any order, duplicates fine
/// assert_eq!(req.model, "AC2");
/// ```
///
/// The struct is `#[non_exhaustive]`: construct through [`new`] plus the
/// builder methods so new knobs (like [`with_rerank`]) can land without
/// breaking callers.
///
/// [`new`]: RecommendRequest::new
/// [`with_rerank`]: RecommendRequest::with_rerank
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RecommendRequest {
    /// The query user id (must be a user of the routed model's training
    /// data; ids outside it are a caller bug, like indexing out of bounds).
    pub user: u32,
    /// List length.
    pub k: usize,
    /// Name of the registered model (or sharded model group) to serve
    /// from.
    pub model: String,
    /// Per-request stopping override for the walk family's serving DP;
    /// `None` uses the engine's default policy.
    pub stopping: Option<DpStopping>,
    /// Request-scoped exclusions merged with the user's training items.
    /// [`RecommendRequest::excluding`] accepts any order and duplicates and
    /// normalizes **once at build time** — retries and fallback attempts
    /// borrow the already-sorted set instead of re-normalizing per attempt.
    pub exclude: ExclusionSet,
    /// Deadline for this request, `None` for no time bound. An expired
    /// deadline is checked twice: at dequeue — the request is shed with
    /// [`ServeError::DeadlineExceeded`] *without* running any scoring — and
    /// cooperatively inside the walk family's DP loop, which aborts at its
    /// next measured iteration so a request cannot keep burning a worker
    /// past its deadline. A query that completes before the check fires
    /// returns its response normally.
    pub deadline: Option<std::time::Instant>,
    /// Per-request retry override; `None` uses the engine's default policy
    /// (no retries unless [`crate::EngineBuilder::default_retry`] set one).
    pub retry: Option<RetryPolicy>,
    /// Optional recency-decay weighting for this request: edge weights are
    /// scaled by `exp(-ln2 · age/half_life)` before the walk, favouring the
    /// user's fresh tastes. `None` (the default) serves the timeless
    /// ranking. On untimed training data the decay scales all weights
    /// uniformly and the ranking is unchanged.
    pub recency: Option<RecencyDecay>,
    /// Per-request re-rank override for the long-tail quality stage.
    /// `None` defers to the engine's per-class and engine-wide defaults
    /// ([`crate::EngineBuilder::class_rerank`] /
    /// [`crate::EngineBuilder::default_rerank`]); a `Some` policy with
    /// [`RerankPolicy::is_enabled`]` == false` explicitly turns re-ranking
    /// *off* for this request. Re-ranking only applies to models the engine
    /// holds a [`longtail_core::RerankIndex`] for
    /// ([`crate::EngineBuilder::rerank_index`]); degraded fallback answers
    /// are never re-ranked.
    pub rerank: Option<RerankPolicy>,
    /// QoS class of this request (default [`Priority::Interactive`]).
    /// Under [`crate::SchedPolicy::Qos`] the engine dequeues strictly by
    /// class — every queued `Interactive` request before any `Batch`, every
    /// `Batch` before any `Background` — with earliest-deadline-first
    /// ordering inside a class; lower classes are also preferred as shed
    /// victims. Under [`crate::SchedPolicy::Fifo`] the class is recorded in
    /// the per-class stats but does not affect ordering.
    pub priority: Priority,
}

impl RecommendRequest {
    /// A plain request: engine-default stopping, no extra exclusions.
    pub fn new(model: impl Into<String>, user: u32, k: usize) -> Self {
        Self {
            user,
            k,
            model: model.into(),
            stopping: None,
            exclude: ExclusionSet::default(),
            deadline: None,
            retry: None,
            recency: None,
            rerank: None,
            priority: Priority::default(),
        }
    }

    /// Override the engine's default stopping policy for this request.
    pub fn with_stopping(mut self, stopping: DpStopping) -> Self {
        self.stopping = Some(stopping);
        self
    }

    /// Exclude `items` (any order, duplicates allowed) on top of the
    /// user's training items. Normalized (sorted, deduplicated) **once**
    /// here — retries borrow the same [`ExclusionSet`].
    pub fn excluding(mut self, items: impl Into<ExclusionSet>) -> Self {
        self.exclude = items.into();
        self
    }

    /// Bound this request by an absolute deadline (see
    /// [`RecommendRequest::deadline`]).
    pub fn deadline_at(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bound this request by a time budget from now —
    /// `deadline_at(Instant::now() + budget)`.
    pub fn deadline_in(self, budget: std::time::Duration) -> Self {
        self.deadline_at(std::time::Instant::now() + budget)
    }

    /// Override the engine's default [`RetryPolicy`] for this request.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Set this request's QoS class (see [`RecommendRequest::priority`]).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Weight edges by recency for this request (see
    /// [`RecommendRequest::recency`]).
    pub fn with_recency(mut self, decay: RecencyDecay) -> Self {
        self.recency = Some(decay);
        self
    }

    /// Override the engine's re-rank defaults for this request (see
    /// [`RecommendRequest::rerank`]). Pass [`RerankPolicy::default`] to
    /// explicitly disable re-ranking even when the engine has one
    /// configured.
    pub fn with_rerank(mut self, policy: RerankPolicy) -> Self {
        self.rerank = Some(policy);
        self
    }
}

/// The engine's answer to a [`RecommendRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendResponse {
    /// The top-k list, best first — identical (items, ranks, scores) to
    /// calling the routed recommender's `recommend_into` directly with the
    /// request's effective options.
    pub items: Vec<ScoredItem>,
    /// Display name of the recommender that answered (its
    /// `Recommender::name()`, e.g. `"AC2"` — the registry name is echoed
    /// on the request).
    pub model: &'static str,
    /// Which shard served the request; `None` for unsharded models.
    pub shard: Option<usize>,
    /// Version of the model that answered (`1` = the build-time
    /// registration; each [`crate::Engine::deploy`] increments it). A
    /// request is pinned to the version it resolved at execution start —
    /// this field proves which side of a hot swap it landed on.
    pub version: u32,
    /// The streaming-ingest epoch this response was served at: `Some` iff
    /// the routed model has a [`crate::DeltaStore`] attached
    /// ([`crate::EngineBuilder::ingest`]), in which case the list scored
    /// over base + delta-overlay as of exactly this epoch, and the
    /// `(version, epoch)` pair appears in the store's
    /// [`crate::DeltaStore::epoch_log`] — the no-torn-epoch witness.
    /// `None` for models without ingest and for degraded (fallback)
    /// answers.
    pub epoch: Option<u64>,
    /// DP iteration counters of exactly this request's query (all-zero for
    /// non-walk models), diffed off the pooled context that served it.
    pub telemetry: DpTelemetry,
    /// Per-item provenance of the long-tail re-rank stage, aligned with
    /// [`RecommendResponse::items`]: `Some` iff an enabled
    /// [`RerankPolicy`] resolved for this request *and* the routed model
    /// has a [`longtail_core::RerankIndex`] registered. Each entry carries
    /// the item's popularity percentile, its tail flag and how far the
    /// re-ranker moved it relative to pure relevance order. `None` means
    /// the list is the raw fused top-k (including all degraded answers).
    pub provenance: Option<Vec<ItemProvenance>>,
    /// `true` when the registered **fallback** model produced this list
    /// because the requested primary was unavailable (breaker open, or its
    /// retries exhausted); [`RecommendResponse::model`] then names the
    /// fallback. Every non-degraded response is rank-identical to a
    /// fault-free engine's answer — degradation is flagged, never silent.
    pub degraded: bool,
}

/// Why the engine refused or failed a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request named a model the engine has no registration for.
    UnknownModel(String),
    /// The query panicked while being served (e.g. a user id outside the
    /// routed model's training data). The engine survives — pool workers
    /// keep running and later requests are unaffected — and the panic
    /// message is preserved here; the panic hook still logs to stderr.
    RequestPanicked(String),
    /// The admission queue was full and the backpressure policy refused the
    /// request: [`crate::AdmissionPolicy::Reject`] returns this from
    /// [`crate::Engine::submit`] itself, and
    /// [`crate::AdmissionPolicy::ShedOldest`] resolves the *oldest queued*
    /// request's [`crate::PendingResponse`] with it.
    Overloaded,
    /// The request's deadline expired before a response was produced —
    /// either already at dequeue (shed without running any scoring) or
    /// mid-query, when the walk DP's cooperative cancellation fired.
    DeadlineExceeded,
    /// The engine shut down before the queued request was served: engine
    /// drop cancels every not-yet-started request so teardown never waits
    /// on a backlog.
    ShuttingDown,
    /// The routed model's (or shard's) circuit breaker is open and no
    /// fallback model is registered: the request is refused fast — at
    /// submit time when possible, before it spends a queue slot or a
    /// [`longtail_core::ScoringContext`] — instead of feeding a model the
    /// rolling window says is down.
    CircuitOpen,
    /// The model returned non-finite (NaN or −∞) scores in its top-k list.
    /// The shared [`longtail_core::TopKCollector`] never admits such
    /// scores, so any non-finite score in a response is poison from a buggy
    /// or faulted custom path; the engine refuses to serve it and feeds the
    /// breaker a failure.
    PoisonedScores,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownModel(name) => write!(f, "no model registered under {name:?}"),
            Self::RequestPanicked(message) => {
                write!(f, "request panicked while being served: {message}")
            }
            Self::Overloaded => write!(f, "admission queue full, request refused by backpressure"),
            Self::DeadlineExceeded => write!(f, "request deadline expired before completion"),
            Self::ShuttingDown => write!(f, "engine shut down before the request was served"),
            Self::CircuitOpen => {
                write!(f, "model circuit breaker is open, request refused fast")
            }
            Self::PoisonedScores => {
                write!(f, "model returned non-finite scores, response refused")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let req = RecommendRequest::new("HT", 3, 5)
            .with_stopping(DpStopping::Fixed)
            .excluding(vec![9, 1, 9]);
        assert_eq!(req.user, 3);
        assert_eq!(req.k, 5);
        assert_eq!(req.model, "HT");
        assert_eq!(req.stopping, Some(DpStopping::Fixed));
        // Normalized once at build time: sorted ascending, deduplicated.
        assert_eq!(req.exclude.as_slice(), &[1, 9]);
        assert_eq!(req.priority, Priority::Interactive, "default class");
        assert_eq!(req.rerank, None, "no re-rank override by default");
        let req = req.with_priority(Priority::Background);
        assert_eq!(req.priority, Priority::Background);
        let req = req.with_rerank(RerankPolicy::new().mmr(0.3));
        assert!(req.rerank.unwrap().is_enabled());
    }

    #[test]
    fn error_displays_model_name() {
        let e = ServeError::UnknownModel("nope".into());
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn retry_policy_floors_at_one_attempt() {
        assert_eq!(RetryPolicy::attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::default().max_attempts, 1);
        let p = RetryPolicy::attempts(3).with_backoff(std::time::Duration::from_millis(5));
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.backoff, std::time::Duration::from_millis(5));
    }
}
