//! User-keyed shard routing.
//!
//! A sharded model entry holds one trained recommender per shard — e.g. one
//! graph per user region, the ROADMAP's "shard the model" rung — and a
//! [`ShardRouter`] deciding which shard answers a given user's request.
//! Routing is pure (`user → shard index`), so the same request always hits
//! the same shard and engine output is pinned to "ask the owning shard
//! directly" by the equivalence property tests.

/// Maps a user id to the index of the shard that owns it.
///
/// Implementations must be pure functions of `(user, n_shards)` and return
/// an index `< n_shards` for every `n_shards >= 1`; the engine asserts the
/// bound at request time.
pub trait ShardRouter: Send + Sync {
    /// The shard (always `< n_shards`) owning `user`.
    fn route(&self, user: u32, n_shards: usize) -> usize;
}

/// Modulo routing: `user % n_shards`.
///
/// The right default when user ids carry no locality — shards stay balanced
/// for any id distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModuloRouter;

impl ShardRouter for ModuloRouter {
    fn route(&self, user: u32, n_shards: usize) -> usize {
        debug_assert!(n_shards > 0, "routing requires at least one shard");
        user as usize % n_shards.max(1)
    }
}

/// Contiguous-range routing: shard `i` owns users in
/// `[boundaries[i-1], boundaries[i])`, with the last shard open-ended.
///
/// The fit for region- or tenant-partitioned user id spaces, where each
/// shard's model was trained on its own range of the user base.
#[derive(Debug, Clone)]
pub struct RangeRouter {
    /// Ascending exclusive upper bounds of every shard but the last; users
    /// at or above the final boundary route to the last shard.
    boundaries: Vec<u32>,
}

impl RangeRouter {
    /// Router with the given ascending exclusive upper bounds; for
    /// `n_shards` shards pass `n_shards - 1` boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not strictly ascending.
    pub fn new(boundaries: Vec<u32>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "RangeRouter boundaries must be strictly ascending"
        );
        Self { boundaries }
    }
}

impl ShardRouter for RangeRouter {
    fn route(&self, user: u32, n_shards: usize) -> usize {
        let shard = self.boundaries.partition_point(|&b| b <= user);
        // More boundaries than shards cannot produce a valid index past the
        // end; clamp so a misconfigured router degrades to the last shard
        // instead of an out-of-bounds panic deep in the engine.
        shard.min(n_shards.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_covers_all_shards() {
        let r = ModuloRouter;
        for user in 0..20u32 {
            let shard = r.route(user, 3);
            assert_eq!(shard, user as usize % 3);
            assert!(shard < 3);
        }
        assert_eq!(r.route(7, 1), 0);
    }

    #[test]
    fn range_routes_by_boundary() {
        let r = RangeRouter::new(vec![10, 20]);
        assert_eq!(r.route(0, 3), 0);
        assert_eq!(r.route(9, 3), 0);
        assert_eq!(r.route(10, 3), 1);
        assert_eq!(r.route(19, 3), 1);
        assert_eq!(r.route(20, 3), 2);
        assert_eq!(r.route(u32::MAX, 3), 2);
    }

    #[test]
    fn range_clamps_to_last_shard() {
        // Misconfigured (3 boundaries for 2 shards): clamp, don't panic.
        let r = RangeRouter::new(vec![5, 10, 15]);
        assert_eq!(r.route(100, 2), 1);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn range_rejects_unsorted_boundaries() {
        let _ = RangeRouter::new(vec![10, 10]);
    }
}
