//! QoS scheduling primitives: request priority classes, the engine's
//! dequeue policy, the per-model service-time EWMA behind slack-based
//! shedding, and the fixed-bucket latency histogram behind the per-class
//! p50/p99 percentiles in [`crate::EngineStats`].
//!
//! Under [`SchedPolicy::Qos`] (the default) the admission queue is no
//! longer FIFO: dequeue picks by strict priority class first
//! ([`Priority::Interactive`] before [`Priority::Batch`] before
//! [`Priority::Background`]), earliest deadline first within a class, and
//! submission order as the tie break. A workload that never sets
//! priorities or deadlines — every pre-QoS caller — degrades exactly to
//! FIFO, so the default is behavior-preserving. [`SchedPolicy::Fifo`]
//! keeps the literal arrival order and disables slack shedding; it exists
//! as the measurable baseline (see the `qos_scheduling` bench section).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// QoS class of a [`crate::RecommendRequest`] — under [`SchedPolicy::Qos`]
/// the engine serves classes in strict priority order (all queued
/// `Interactive` work before any `Batch`, all `Batch` before any
/// `Background`), with earliest-deadline-first ordering inside each class.
///
/// The default is `Interactive`: a request that never states a class is
/// user-facing traffic, not an offline job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// User-facing traffic: served before everything else.
    #[default]
    Interactive,
    /// Throughput work (batch precomputation, backfills): served when no
    /// interactive request is waiting.
    Batch,
    /// Best-effort work (cache warming, analytics): served only from an
    /// otherwise-idle queue, first to be shed as a victim.
    Background,
}

impl Priority {
    /// Number of priority classes (the length of per-class stat arrays).
    pub const COUNT: usize = 3;

    /// Every class, highest priority first — indexable by
    /// [`Priority::index`].
    pub const ALL: [Priority; Priority::COUNT] =
        [Priority::Interactive, Priority::Batch, Priority::Background];

    /// Dense index of this class (0 = `Interactive` … 2 = `Background`),
    /// used into per-class arrays like [`crate::EngineStats::per_class`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lower-case display name (`"interactive"`, `"batch"`,
    /// `"background"`).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }
}

/// How the engine orders the admitted set at dequeue
/// ([`crate::EngineBuilder::scheduling`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Literal arrival order, no slack shedding — the pre-QoS engine, kept
    /// as the measurable baseline.
    Fifo,
    /// Strict [`Priority`] classes with earliest-deadline-first ordering
    /// inside each class, plus slack-based shedding at dequeue: a request
    /// whose deadline provably cannot be met (given the EWMA of its
    /// model's observed service time) is dropped before any scoring runs.
    /// For requests with no priorities and no deadlines this is exactly
    /// FIFO.
    #[default]
    Qos,
}

/// EWMA weight of the newest observation: small enough that one slow
/// outlier does not triple the estimate, large enough that a genuinely
/// regressed model is reflected within a handful of requests.
const SERVICE_EWMA_ALPHA: f64 = 0.2;

/// Exponentially-weighted moving average of observed per-model service
/// times, keyed by registry name — the evidence behind slack-based
/// shedding. Only successful, fully-served requests feed it (a shed or
/// expired request measures the scheduler, not the model), so the estimate
/// converges on "what one more admission would cost".
#[derive(Debug, Default)]
pub(crate) struct ServiceEwma {
    estimates: Mutex<HashMap<String, f64>>,
}

impl ServiceEwma {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Fold one observed service time (seconds) into `model`'s estimate.
    pub(crate) fn observe(&self, model: &str, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        let mut estimates = self.estimates.lock();
        match estimates.get_mut(model) {
            Some(estimate) => *estimate += SERVICE_EWMA_ALPHA * (seconds - *estimate),
            None => {
                estimates.insert(model.to_string(), seconds);
            }
        }
    }

    /// Current estimate for `model`; `None` until the first observation —
    /// slack shedding never fires on a model the engine has no evidence
    /// about.
    pub(crate) fn estimate(&self, model: &str) -> Option<Duration> {
        self.estimates
            .lock()
            .get(model)
            .map(|&seconds| Duration::from_secs_f64(seconds))
    }
}

/// Number of buckets in the fixed-bucket latency histogram behind
/// [`crate::ClassStats::latency`].
pub const LATENCY_BUCKETS: usize = 32;

/// Upper bound, in seconds, of histogram bucket `i`: `1µs · 2^i`. Bucket
/// `i` counts latencies in `(bound(i-1), bound(i)]`; bucket 0 starts at
/// zero and the last bucket (≈ 36 minutes) additionally absorbs anything
/// beyond its bound, so no latency is ever dropped.
pub fn latency_bucket_bound(bucket: usize) -> f64 {
    assert!(bucket < LATENCY_BUCKETS, "bucket {bucket} out of range");
    1e-6 * (1u64 << bucket) as f64
}

fn latency_bucket_index(seconds: f64) -> usize {
    let mut bound = 1e-6;
    for bucket in 0..LATENCY_BUCKETS - 1 {
        if seconds <= bound {
            return bucket;
        }
        bound *= 2.0;
    }
    LATENCY_BUCKETS - 1
}

/// The `q`-quantile (`0.0 ..= 1.0`) of a latency histogram snapshot, as the
/// upper bound (seconds) of the bucket holding that rank — a conservative
/// (never under-reporting) estimate, diffable across snapshots like every
/// other engine counter. `None` for an empty histogram.
pub fn latency_quantile(buckets: &[u64; LATENCY_BUCKETS], q: f64) -> Option<f64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (bucket, &count) in buckets.iter().enumerate() {
        cumulative += count;
        if cumulative >= target {
            return Some(latency_bucket_bound(bucket));
        }
    }
    None
}

/// Lock-free fixed-bucket histogram of served-request latencies, one per
/// priority class inside the engine's counters. Geometric bucket bounds
/// (`1µs · 2^i`) cover sub-millisecond DP queries and multi-second batch
/// scans in the same 32 counters.
#[derive(Debug, Default)]
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Count one latency observation.
    pub(crate) fn record(&self, elapsed: Duration) {
        let bucket = latency_bucket_index(elapsed.as_secs_f64());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Monotone snapshot of the bucket counts.
    pub(crate) fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_indices_are_dense_and_ordered() {
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert!(Priority::Interactive < Priority::Batch);
        assert!(Priority::Batch < Priority::Background);
        assert_eq!(Priority::default(), Priority::Interactive);
        assert_eq!(Priority::Background.name(), "background");
    }

    #[test]
    fn ewma_tracks_observations_and_starts_empty() {
        let ewma = ServiceEwma::new();
        assert_eq!(ewma.estimate("HT"), None, "no evidence, no estimate");
        ewma.observe("HT", 0.100);
        assert_eq!(ewma.estimate("HT"), Some(Duration::from_millis(100)));
        // Converges toward a shifted service time, one alpha step at a time.
        ewma.observe("HT", 0.200);
        let est = ewma.estimate("HT").unwrap().as_secs_f64();
        assert!((est - 0.120).abs() < 1e-9, "0.1 + 0.2·(0.2−0.1), got {est}");
        // Garbage observations are ignored, models are independent.
        ewma.observe("HT", f64::NAN);
        ewma.observe("HT", -1.0);
        assert!((ewma.estimate("HT").unwrap().as_secs_f64() - 0.120).abs() < 1e-9);
        assert_eq!(ewma.estimate("AC2"), None);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(latency_bucket_bound(0), 1e-6);
        assert_eq!(latency_bucket_bound(10), 1024e-6);
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(500)); // bucket 0
        h.record(Duration::from_micros(3)); // (2µs, 4µs] → bucket 2
        h.record(Duration::from_secs(7200)); // beyond the last bound → bucket 31
        let snap = h.snapshot();
        assert_eq!(snap[0], 1);
        assert_eq!(snap[2], 1);
        assert_eq!(snap[LATENCY_BUCKETS - 1], 1);
        assert_eq!(snap.iter().sum::<u64>(), 3);
        // Quantiles report the holding bucket's upper bound, conservatively.
        assert_eq!(latency_quantile(&snap, 0.0), Some(latency_bucket_bound(0)));
        assert_eq!(latency_quantile(&snap, 0.5), Some(latency_bucket_bound(2)));
        assert_eq!(
            latency_quantile(&snap, 1.0),
            Some(latency_bucket_bound(LATENCY_BUCKETS - 1))
        );
        assert_eq!(latency_quantile(&[0; LATENCY_BUCKETS], 0.5), None);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        buckets[3] = 50;
        buckets[8] = 49;
        buckets[20] = 1;
        assert_eq!(
            latency_quantile(&buckets, 0.50),
            Some(latency_bucket_bound(3))
        );
        assert_eq!(
            latency_quantile(&buckets, 0.99),
            Some(latency_bucket_bound(8))
        );
        assert_eq!(
            latency_quantile(&buckets, 0.999),
            Some(latency_bucket_bound(20))
        );
    }
}
