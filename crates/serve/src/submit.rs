//! The asynchronous half of the engine's request surface:
//! [`PendingResponse`] handles returned by [`crate::Engine::submit`], and
//! the [`EngineStats`] saturation/shed/deadline counters.

use crate::ingest::IngestStats;
use crate::request::{RecommendResponse, ServeError};
use crate::sched::{latency_quantile, LatencyHistogram, Priority, LATENCY_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// The future-style handle to one submitted request.
///
/// [`crate::Engine::submit`] enqueues the request and returns immediately;
/// the response materializes on a pool worker and is claimed through this
/// handle — poll it ([`PendingResponse::try_recv`]), bound the wait
/// ([`PendingResponse::wait_timeout`]), or block ([`PendingResponse::wait`]).
/// No async runtime is involved: the handle is a one-shot reply channel,
/// usable from any thread the handle is moved to.
///
/// The result is yielded **exactly once**: after any accessor has returned
/// it, `try_recv`/`wait_timeout` return `None` forever. Dropping the handle
/// abandons the request's *result* only — the request itself still runs (or
/// is shed) as scheduled; the worker's reply to an abandoned handle is
/// discarded.
#[derive(Debug)]
pub struct PendingResponse {
    rx: mpsc::Receiver<Result<RecommendResponse, ServeError>>,
    /// Set once the one-shot result has been yielded.
    taken: bool,
}

impl PendingResponse {
    pub(crate) fn new(rx: mpsc::Receiver<Result<RecommendResponse, ServeError>>) -> Self {
        Self { rx, taken: false }
    }

    /// A handle that is already resolved (the zero-worker engine serves
    /// submissions synchronously).
    pub(crate) fn ready(result: Result<RecommendResponse, ServeError>) -> Self {
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(result);
        Self::new(rx)
    }

    /// Non-blocking poll: the result if it is ready (or was abandoned —
    /// see below), `None` while the request is still queued or running.
    ///
    /// A disconnected reply channel — the engine dropped the job without
    /// answering, which no live code path does — degrades to
    /// [`ServeError::ShuttingDown`] rather than hanging the caller.
    pub fn try_recv(&mut self) -> Option<Result<RecommendResponse, ServeError>> {
        if self.taken {
            return None;
        }
        match self.rx.try_recv() {
            Ok(result) => {
                self.taken = true;
                Some(result)
            }
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                self.taken = true;
                Some(Err(ServeError::ShuttingDown))
            }
        }
    }

    /// Block for at most `timeout`: the result, or `None` if it is not
    /// ready in time (the request keeps running; poll or wait again).
    pub fn wait_timeout(
        &mut self,
        timeout: Duration,
    ) -> Option<Result<RecommendResponse, ServeError>> {
        if self.taken {
            return None;
        }
        match self.rx.recv_timeout(timeout) {
            Ok(result) => {
                self.taken = true;
                Some(result)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.taken = true;
                Some(Err(ServeError::ShuttingDown))
            }
        }
    }

    /// Block until the response arrives. Cannot deadlock against the
    /// engine: every admitted job is answered — served, shed, expired, or
    /// cancelled at shutdown — and an already-yielded result returns
    /// [`ServeError::ShuttingDown`] instead of hanging.
    pub fn wait(self) -> Result<RecommendResponse, ServeError> {
        if self.taken {
            return Err(ServeError::ShuttingDown);
        }
        match self.rx.recv() {
            Ok(result) => result,
            Err(mpsc::RecvError) => Err(ServeError::ShuttingDown),
        }
    }
}

/// Per-priority-class slice of [`EngineStats`], indexed by
/// [`Priority::index`] into [`EngineStats::per_class`].
///
/// Only *admitted* requests are counted (submit-time refusals — `Reject`
/// on a full queue, open breakers — never enter a class ledger), and the
/// ledger balances per class:
/// `submitted = served + shed + expired + failed`, where `shed` covers
/// both admission victims and slack-shed unmeetable deadlines, `expired`
/// covers dequeue-time and in-DP deadline expiries, and `failed` absorbs
/// every other terminal error (panics, unknown models, worker-side breaker
/// refusals) plus shutdown cancellation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Requests of this class admitted (enqueued or started inline).
    pub submitted: u64,
    /// Requests of this class answered with a response (degraded or not).
    pub served: u64,
    /// Requests of this class shed without serving: admission victims
    /// ([`crate::AdmissionPolicy::ShedOldest`]) and slack-shed requests
    /// whose deadline was provably unmeetable.
    pub shed: u64,
    /// Requests of this class whose deadline expired — at dequeue or
    /// cooperatively inside the walk DP.
    pub expired: u64,
    /// Requests of this class answered with any other error, or cancelled
    /// by engine shutdown.
    pub failed: u64,
    /// Fixed-bucket histogram of this class's served-request latencies
    /// (submit → response, queueing included): bucket `i` counts latencies
    /// in `(bound(i-1), bound(i)]` seconds with
    /// `bound(i) = `[`crate::latency_bucket_bound`]`(i)` ` = 1µs · 2^i`.
    /// Monotone and bucket-wise diffable like every other counter.
    pub latency: [u64; LATENCY_BUCKETS],
}

impl ClassStats {
    /// Counter-wise (and bucket-wise) difference against an `earlier`
    /// snapshot (saturating).
    pub fn since(&self, earlier: &ClassStats) -> ClassStats {
        ClassStats {
            submitted: self.submitted.saturating_sub(earlier.submitted),
            served: self.served.saturating_sub(earlier.served),
            shed: self.shed.saturating_sub(earlier.shed),
            expired: self.expired.saturating_sub(earlier.expired),
            failed: self.failed.saturating_sub(earlier.failed),
            latency: std::array::from_fn(|i| self.latency[i].saturating_sub(earlier.latency[i])),
        }
    }

    /// Median served latency in seconds (conservative: the holding
    /// bucket's upper bound); `None` while nothing was served.
    pub fn latency_p50(&self) -> Option<f64> {
        latency_quantile(&self.latency, 0.50)
    }

    /// 99th-percentile served latency in seconds (conservative: the
    /// holding bucket's upper bound); `None` while nothing was served.
    pub fn latency_p99(&self) -> Option<f64> {
        latency_quantile(&self.latency, 0.99)
    }
}

/// Engine-lifetime serving counters — the observability surface of the
/// async front-end, read via [`crate::Engine::stats`].
///
/// All counters are monotone; diff two snapshots with
/// [`EngineStats::since`] to attribute counts to a traffic window. The
/// ledger balances: every submission accepted by `submit`/`recommend`/
/// `recommend_batch` (`submitted`) is eventually counted in exactly one of
/// `completed`, `failed`, `panicked`, `expired_at_dequeue`, `expired_in_dp`,
/// `shed` or `cancelled_at_shutdown`; refusals (`rejected`, and the
/// submit-time share of `circuit_open`) were never admitted.
///
/// The counters below the ledger block — `degraded`, `retries`,
/// `contexts_discarded`, `circuit_open`, `workers_restarted` — are
/// *attribution* counters: they explain how requests were handled, overlap
/// with the ledger slots (a degraded request is also `completed`; a retried
/// panic bumps `contexts_discarded` without any ledger entry if the retry
/// succeeds) and must not be added into the balance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests admitted: enqueued for the pool or started inline.
    pub submitted: u64,
    /// Requests answered with a response (degraded or not).
    pub completed: u64,
    /// Requests answered with a non-deadline, non-panic error (unknown
    /// model, poisoned scores, worker-side circuit-open refusals with no
    /// fallback).
    pub failed: u64,
    /// Requests whose *final* answer was [`ServeError::RequestPanicked`]:
    /// every attempt (and any fallback) panicked. Split out of `failed`
    /// because a panicking model is an incident, not a caller error.
    pub panicked: u64,
    /// Submissions refused outright by [`crate::AdmissionPolicy::Reject`]
    /// on a full queue ([`ServeError::Overloaded`] from `submit` itself).
    pub rejected: u64,
    /// Queued requests shed without serving: admission victims evicted by
    /// [`crate::AdmissionPolicy::ShedOldest`] to admit newer traffic
    /// (their handles resolve [`ServeError::Overloaded`]) plus requests
    /// slack-shed at dequeue because their deadline was provably
    /// unmeetable (the `shed_unmeetable` subset, resolving
    /// [`ServeError::DeadlineExceeded`]).
    pub shed: u64,
    /// Requests whose deadline had already expired when a worker (or the
    /// inline path) picked them up: shed without running any scoring.
    pub expired_at_dequeue: u64,
    /// Requests cancelled mid-query by the walk DP's cooperative deadline
    /// check.
    pub expired_in_dp: u64,
    /// Queued requests cancelled by engine shutdown (their handles resolve
    /// [`ServeError::ShuttingDown`]).
    pub cancelled_at_shutdown: u64,
    /// Requests completed by the registered **fallback** model because the
    /// primary was unavailable (subset of `completed`; the responses carry
    /// [`RecommendResponse::degraded`] = `true`).
    pub degraded: u64,
    /// Extra serving attempts made under a [`crate::RetryPolicy`] (a
    /// request served on its 3rd attempt adds 2 here and 1 to `completed`).
    pub retries: u64,
    /// [`longtail_core::ScoringContext`]s discarded instead of returned to
    /// the pool because a query panicked while holding one — every caught
    /// panic bumps this, whether or not a retry then succeeds.
    pub contexts_discarded: u64,
    /// Requests refused by an open circuit breaker with no fallback to
    /// serve — at submit time (these never count as `submitted`, like
    /// `rejected`) or at a worker (these land in `failed`).
    pub circuit_open: u64,
    /// Dead pool workers detected and respawned by supervision, keeping
    /// the worker count at its configured size.
    pub workers_restarted: u64,
    /// Admitted requests dropped at dequeue by **slack-based shedding**
    /// under [`crate::SchedPolicy::Qos`]: the EWMA of the routed model's
    /// service time said the deadline provably could not be met, so no
    /// scoring ran (their handles resolve
    /// [`ServeError::DeadlineExceeded`]). A subset of `shed` — attribution,
    /// not a ledger slot of its own.
    pub shed_unmeetable: u64,
    /// The same ledger, sliced by [`Priority`] class (indexed by
    /// [`Priority::index`]), each slice carrying its own served-latency
    /// histogram for [`ClassStats::latency_p50`]/[`ClassStats::latency_p99`].
    pub per_class: [ClassStats; Priority::COUNT],
    /// Streaming-ingest counters summed over every attached
    /// [`crate::DeltaStore`] (all-zero when no model has ingest): appends
    /// accepted, delta edges live, compactions run, epochs published.
    /// Diffable through [`EngineStats::since`] like the serving ledger
    /// (the live-edge gauge passes through, see [`IngestStats::since`]).
    pub ingest: IngestStats,
}

impl EngineStats {
    /// Counter-wise difference against an `earlier` snapshot (saturating).
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            submitted: self.submitted.saturating_sub(earlier.submitted),
            completed: self.completed.saturating_sub(earlier.completed),
            failed: self.failed.saturating_sub(earlier.failed),
            panicked: self.panicked.saturating_sub(earlier.panicked),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            shed: self.shed.saturating_sub(earlier.shed),
            expired_at_dequeue: self
                .expired_at_dequeue
                .saturating_sub(earlier.expired_at_dequeue),
            expired_in_dp: self.expired_in_dp.saturating_sub(earlier.expired_in_dp),
            cancelled_at_shutdown: self
                .cancelled_at_shutdown
                .saturating_sub(earlier.cancelled_at_shutdown),
            degraded: self.degraded.saturating_sub(earlier.degraded),
            retries: self.retries.saturating_sub(earlier.retries),
            contexts_discarded: self
                .contexts_discarded
                .saturating_sub(earlier.contexts_discarded),
            circuit_open: self.circuit_open.saturating_sub(earlier.circuit_open),
            workers_restarted: self
                .workers_restarted
                .saturating_sub(earlier.workers_restarted),
            shed_unmeetable: self.shed_unmeetable.saturating_sub(earlier.shed_unmeetable),
            per_class: std::array::from_fn(|i| self.per_class[i].since(&earlier.per_class[i])),
            ingest: self.ingest.since(&earlier.ingest),
        }
    }

    /// Requests never served because backpressure or deadlines dropped
    /// them: `rejected + shed + expired_at_dequeue + expired_in_dp`.
    ///
    /// `panicked` and worker-side `circuit_open` requests are *not* drops:
    /// they were admitted and answered, just with an error — they live in
    /// the `panicked`/`failed` ledger slots instead. Submit-time
    /// `circuit_open` refusals are drops in spirit but tracked separately
    /// so this sum keeps its pre-breaker meaning.
    pub fn dropped(&self) -> u64 {
        self.rejected + self.shed + self.expired_at_dequeue + self.expired_in_dp
    }
}

/// The atomic counters behind one [`ClassStats`] slice.
#[derive(Debug, Default)]
pub(crate) struct ClassCounters {
    pub(crate) submitted: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) expired: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) latency: LatencyHistogram,
}

impl ClassCounters {
    fn snapshot(&self) -> ClassStats {
        ClassStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

/// The atomic counters behind [`EngineStats`], owned by the engine core and
/// bumped lock-free from every caller thread and pool worker.
#[derive(Debug, Default)]
pub(crate) struct EngineCounters {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) panicked: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) expired_at_dequeue: AtomicU64,
    pub(crate) expired_in_dp: AtomicU64,
    pub(crate) cancelled_at_shutdown: AtomicU64,
    pub(crate) degraded: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) contexts_discarded: AtomicU64,
    pub(crate) circuit_open: AtomicU64,
    pub(crate) workers_restarted: AtomicU64,
    pub(crate) shed_unmeetable: AtomicU64,
    pub(crate) per_class: [ClassCounters; Priority::COUNT],
}

impl EngineCounters {
    /// One relaxed increment (counters are statistics, not synchronization).
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The per-class counter slice owning `priority`'s requests.
    pub(crate) fn class(&self, priority: Priority) -> &ClassCounters {
        &self.per_class[priority.index()]
    }

    pub(crate) fn snapshot(&self) -> EngineStats {
        EngineStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired_at_dequeue: self.expired_at_dequeue.load(Ordering::Relaxed),
            expired_in_dp: self.expired_in_dp.load(Ordering::Relaxed),
            cancelled_at_shutdown: self.cancelled_at_shutdown.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            contexts_discarded: self.contexts_discarded.load(Ordering::Relaxed),
            circuit_open: self.circuit_open.load(Ordering::Relaxed),
            workers_restarted: self.workers_restarted.load(Ordering::Relaxed),
            shed_unmeetable: self.shed_unmeetable.load(Ordering::Relaxed),
            per_class: std::array::from_fn(|i| self.per_class[i].snapshot()),
            // The stores own their counters; [`crate::Engine::stats`] sums
            // them in over this zero slot.
            ingest: IngestStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_yields_exactly_once() {
        let mut p = PendingResponse::ready(Err(ServeError::Overloaded));
        assert_eq!(p.try_recv(), Some(Err(ServeError::Overloaded)));
        assert_eq!(p.try_recv(), None);
        assert_eq!(p.wait_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn pending_try_recv_is_none_while_unresolved() {
        let (tx, rx) = mpsc::channel();
        let mut p = PendingResponse::new(rx);
        assert_eq!(p.try_recv(), None);
        assert_eq!(p.wait_timeout(Duration::from_millis(1)), None);
        tx.send(Err(ServeError::Overloaded)).unwrap();
        assert_eq!(
            p.wait_timeout(Duration::from_secs(5)),
            Some(Err(ServeError::Overloaded))
        );
    }

    #[test]
    fn dropped_sender_degrades_to_shutting_down() {
        let (tx, rx) = mpsc::channel::<Result<RecommendResponse, ServeError>>();
        drop(tx);
        assert_eq!(
            PendingResponse::new(rx).wait(),
            Err(ServeError::ShuttingDown)
        );
        let (tx, rx) = mpsc::channel::<Result<RecommendResponse, ServeError>>();
        drop(tx);
        let mut p = PendingResponse::new(rx);
        assert_eq!(p.try_recv(), Some(Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn stats_since_and_dropped() {
        let earlier = EngineStats {
            submitted: 5,
            completed: 3,
            ..EngineStats::default()
        };
        let later = EngineStats {
            submitted: 9,
            completed: 5,
            rejected: 1,
            shed: 2,
            expired_at_dequeue: 1,
            panicked: 1,
            degraded: 2,
            retries: 3,
            contexts_discarded: 4,
            circuit_open: 5,
            workers_restarted: 1,
            ..earlier
        };
        let diff = later.since(&earlier);
        assert_eq!(diff.submitted, 4);
        assert_eq!(diff.completed, 2);
        assert_eq!(diff.dropped(), 4, "panics and breaker refusals not drops");
        assert_eq!(diff.panicked, 1);
        assert_eq!(diff.degraded, 2);
        assert_eq!(diff.retries, 3);
        assert_eq!(diff.contexts_discarded, 4);
        assert_eq!(diff.circuit_open, 5);
        assert_eq!(diff.workers_restarted, 1);
    }

    #[test]
    fn class_stats_diff_and_percentiles() {
        let mut earlier = ClassStats {
            submitted: 10,
            served: 8,
            shed: 1,
            expired: 1,
            ..ClassStats::default()
        };
        earlier.latency[4] = 8;
        let mut later = earlier;
        later.submitted += 100;
        later.served += 99;
        later.failed += 1;
        later.latency[4] += 90;
        later.latency[9] += 9;
        let diff = later.since(&earlier);
        assert_eq!(diff.submitted, 100);
        assert_eq!(diff.served, 99);
        assert_eq!(diff.failed, 1);
        assert_eq!(diff.latency[4], 90);
        assert_eq!(diff.latency[9], 9);
        // 90 of 99 in bucket 4, 9 in bucket 9: p50 in the low bucket, p99
        // in the tail bucket.
        assert_eq!(diff.latency_p50(), Some(crate::latency_bucket_bound(4)));
        assert_eq!(diff.latency_p99(), Some(crate::latency_bucket_bound(9)));
        assert_eq!(ClassStats::default().latency_p50(), None);
    }

    #[test]
    fn ingest_rides_along_in_engine_stats_since() {
        let mut earlier = EngineStats::default();
        earlier.ingest.appends = 10;
        earlier.ingest.delta_edges_live = 7;
        let mut later = earlier;
        later.ingest.appends = 25;
        later.ingest.delta_edges_live = 3; // compaction shrank the gauge
        later.ingest.compactions = 1;
        later.ingest.epochs_published = 4;
        let diff = later.since(&earlier);
        assert_eq!(diff.ingest.appends, 15);
        assert_eq!(diff.ingest.delta_edges_live, 3, "gauge passes through");
        assert_eq!(diff.ingest.compactions, 1);
        assert_eq!(diff.ingest.epochs_published, 4);
    }

    #[test]
    fn per_class_rides_along_in_engine_stats_since() {
        let mut earlier = EngineStats::default();
        earlier.per_class[Priority::Batch.index()].submitted = 3;
        let mut later = earlier;
        later.per_class[Priority::Batch.index()].submitted = 7;
        later.shed_unmeetable = 2;
        let diff = later.since(&earlier);
        assert_eq!(diff.per_class[Priority::Batch.index()].submitted, 4);
        assert_eq!(diff.per_class[Priority::Interactive.index()].submitted, 0);
        assert_eq!(diff.shed_unmeetable, 2);
    }
}
