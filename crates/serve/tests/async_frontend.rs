//! The async serving front-end's contracts.
//!
//! * **Equivalence** — with no deadlines and no backpressure engaged,
//!   `submit` + drain answers item- and score-identically to the blocking
//!   batch API and to direct `recommend_into`, across every recommender
//!   family (proptested; `PROPTEST_CASES` honoured).
//! * **Backpressure** — under a deterministically full queue,
//!   `AdmissionPolicy::Reject` refuses the *new* request and
//!   `AdmissionPolicy::ShedOldest` sheds the *oldest queued* one, both
//!   without blocking the submitter.
//! * **Deadlines** — an already-expired deadline is shed at dequeue
//!   without touching the DP; a deadline that expires mid-queue-wait
//!   cancels the walk cooperatively (`expired_in_dp`).
//! * **Bounded-time shutdown** — dropping the engine cancels queued
//!   not-yet-started requests instead of serving the backlog.
//!
//! The deterministic full-queue/shutdown tests drive the shared
//! `common::GatedRecommender`: a wrapper that parks inside
//! `recommend_into` until the test opens its gate, making "worker busy,
//! queue full" a constructed state rather than a race.

use longtail_core::{
    DpStopping, GraphRecConfig, HittingTimeRecommender, RecommendOptions, Recommender, ScoredItem,
    ScoringContext,
};
use longtail_data::Dataset;
use longtail_serve::{
    AdmissionPolicy, Engine, PendingResponse, RecommendRequest, ServeError, SharedRecommender,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

mod common;
use common::{
    chain_dataset, ratings, roster, tiny_dataset, Gate, GatedRecommender, HANG, N_ITEMS, N_USERS,
};

fn items_of(list: &[ScoredItem]) -> Vec<u32> {
    list.iter().map(|s| s.item).collect()
}

proptest! {
    /// `submit` + drain ≡ `recommend_batch` ≡ direct `recommend_into`,
    /// item-for-item and score-for-score, when no deadline fires and the
    /// queue never saturates (Block policy) — across all families.
    #[test]
    fn submit_drain_matches_blocking_batch(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let models = roster(&d);
        let mut builder = Engine::builder().workers(2);
        for (name, rec) in &models {
            builder = builder.model(*name, Arc::clone(rec));
        }
        let engine = builder.build();

        let requests: Vec<RecommendRequest> = models
            .iter()
            .flat_map(|(name, _)| {
                (0..d.n_users() as u32).map(|u| RecommendRequest::new(*name, u, 5))
            })
            .collect();

        // Async: fan out every submission first, then drain in order.
        let pending: Vec<PendingResponse> = requests
            .iter()
            .map(|r| engine.submit(r.clone()).expect("Block policy admits all"))
            .collect();
        let async_results: Vec<_> = pending.into_iter().map(|p| p.wait()).collect();

        // Blocking batch over the same requests.
        let batch_results = engine.recommend_batch(requests.clone());

        let mut ctx = ScoringContext::new();
        let mut direct = Vec::new();
        let opts = RecommendOptions::default();
        for (i, req) in requests.iter().enumerate() {
            let (_, rec) = &models[i / d.n_users()];
            let a = async_results[i].as_ref().expect("no deadline, no saturation");
            let b = batch_results[i].as_ref().expect("no deadline, no saturation");
            rec.recommend_into(req.user, req.k, &opts, &mut ctx, &mut direct);
            prop_assert_eq!(&a.items, &direct, "{} user {}: submit+drain diverged", req.model, req.user);
            prop_assert_eq!(&b.items, &direct, "{} user {}: batch diverged", req.model, req.user);
        }
        // Ledger: everything submitted completed; nothing dropped.
        let stats = engine.stats();
        prop_assert_eq!(stats.submitted, 2 * requests.len() as u64);
        prop_assert_eq!(stats.completed, stats.submitted);
        prop_assert_eq!(stats.dropped(), 0);
    }
}

/// A 1-worker engine over the gated model with the worker provably parked
/// inside a request and the queue provably empty — the setup every
/// saturation test starts from.
fn gated_engine(capacity: usize, policy: AdmissionPolicy) -> (Engine, Arc<Gate>, PendingResponse) {
    let gate = Gate::closed();
    let model: SharedRecommender = Arc::new(GatedRecommender::new(
        HittingTimeRecommender::new(&tiny_dataset(), GraphRecConfig::default()),
        Arc::clone(&gate),
    ));
    let engine = Engine::builder()
        .model("gated", model)
        .workers(1)
        .queue_capacity(capacity)
        .admission(policy)
        .build();
    let in_flight = engine
        .submit(RecommendRequest::new("gated", 0, 1))
        .expect("empty queue admits");
    gate.await_arrivals(1); // the worker holds it; the queue is empty again
    assert_eq!(engine.queue_depth(), 0);
    (engine, gate, in_flight)
}

#[test]
fn reject_policy_refuses_without_blocking_when_full() {
    let (engine, gate, in_flight) = gated_engine(2, AdmissionPolicy::Reject);
    let q1 = engine.submit(RecommendRequest::new("gated", 1, 1)).unwrap();
    let q2 = engine.submit(RecommendRequest::new("gated", 0, 1)).unwrap();
    assert_eq!(engine.queue_depth(), 2);
    // Queue full: the refusal is immediate (this call returning at all,
    // with the worker parked, is the non-blocking assertion).
    let refused = engine.submit(RecommendRequest::new("gated", 1, 1));
    assert!(matches!(refused, Err(ServeError::Overloaded)));
    let stats = engine.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.submitted, 3);

    gate.open();
    for p in [in_flight, q1, q2] {
        assert!(p.wait().is_ok(), "admitted requests all complete");
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.shed, 0);
}

#[test]
fn shed_oldest_policy_sheds_the_oldest_queued_request() {
    let (engine, gate, in_flight) = gated_engine(2, AdmissionPolicy::ShedOldest);
    let oldest = engine.submit(RecommendRequest::new("gated", 1, 1)).unwrap();
    let middle = engine.submit(RecommendRequest::new("gated", 0, 1)).unwrap();
    // Queue full: the new submission is admitted at the oldest's expense,
    // without blocking (and without touching the in-flight request).
    let newest = engine.submit(RecommendRequest::new("gated", 1, 1)).unwrap();
    assert_eq!(engine.queue_depth(), 2);
    assert_eq!(oldest.wait(), Err(ServeError::Overloaded));
    let stats = engine.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.submitted, 4);

    gate.open();
    for p in [in_flight, middle, newest] {
        assert!(p.wait().is_ok(), "surviving requests all complete");
    }
    assert_eq!(engine.stats().completed, 3);
}

#[test]
fn expired_deadline_is_shed_at_dequeue_without_running_the_dp() {
    let d = tiny_dataset();
    let engine = Engine::builder()
        .model(
            "HT",
            Arc::new(HittingTimeRecommender::new(&d, GraphRecConfig::default())),
        )
        .workers(1)
        .build();
    // The deadline is already past at submission: the worker must answer
    // DeadlineExceeded without any scoring — the DP telemetry stays empty.
    let pending = engine
        .submit(RecommendRequest::new("HT", 0, 1).deadline_at(Instant::now()))
        .unwrap();
    assert_eq!(pending.wait(), Err(ServeError::DeadlineExceeded));
    assert_eq!(engine.telemetry().queries, 0, "the DP must never have run");
    let stats = engine.stats();
    assert_eq!(stats.expired_at_dequeue, 1);
    assert_eq!(stats.expired_in_dp, 0);
    assert_eq!(stats.completed, 0);

    // Same contract on the inline path.
    let refused = engine.recommend(&RecommendRequest::new("HT", 0, 1).deadline_at(Instant::now()));
    assert_eq!(refused, Err(ServeError::DeadlineExceeded));
    assert_eq!(engine.telemetry().queries, 0);
    assert_eq!(engine.stats().expired_at_dequeue, 2);

    // An undeadlined request on the same engine still serves.
    assert!(engine.recommend(&RecommendRequest::new("HT", 0, 1)).is_ok());
}

#[test]
fn deadline_expiring_mid_request_cancels_the_walk() {
    // The gate parks the request *after* the dequeue-time deadline check
    // but *before* the walk runs; opening it only once the deadline has
    // passed forces the expiry onto the DP's cooperative cancellation
    // path.
    let gate = Gate::closed();
    let model: SharedRecommender = Arc::new(GatedRecommender::new(
        HittingTimeRecommender::new(&chain_dataset(), GraphRecConfig::default()),
        Arc::clone(&gate),
    ));
    let engine = Engine::builder().model("gated", model).workers(1).build();
    let deadline = Instant::now() + Duration::from_millis(200);
    let pending = engine
        .submit(RecommendRequest::new("gated", 12, 5).deadline_at(deadline))
        .unwrap();
    gate.await_arrivals(1); // dequeued: the deadline check already passed
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    gate.open();
    assert_eq!(pending.wait(), Err(ServeError::DeadlineExceeded));
    let stats = engine.stats();
    assert_eq!(stats.expired_in_dp, 1);
    assert_eq!(stats.expired_at_dequeue, 0);
    // The cancelled run is visible in the DP telemetry too.
    assert_eq!(engine.telemetry().deadline_expired, 1);
}

#[test]
fn engine_drop_cancels_queued_requests_in_bounded_time() {
    // Regression for the unbounded-shutdown bug: drop used to let workers
    // drain the whole queue before joining. Now the backlog is cancelled:
    // with the single worker parked on an in-flight request, the queued
    // requests must resolve ShuttingDown *while the worker is still
    // parked* — shutdown never waits on them.
    let (engine, gate, in_flight) = gated_engine(8, AdmissionPolicy::Block);
    let queued_a = engine.submit(RecommendRequest::new("gated", 1, 1)).unwrap();
    let queued_b = engine.submit(RecommendRequest::new("gated", 0, 1)).unwrap();
    assert_eq!(engine.queue_depth(), 2);

    let dropper = std::thread::spawn(move || drop(engine));
    for mut queued in [queued_a, queued_b] {
        // Resolved while the gate is still closed: bounded-time teardown.
        assert_eq!(
            queued.wait_timeout(HANG),
            Some(Err(ServeError::ShuttingDown)),
            "queued request not cancelled by shutdown"
        );
    }
    // Only now may the in-flight request finish; drop joins behind it.
    gate.open();
    assert!(in_flight.wait().is_ok(), "in-flight request still answered");
    dropper.join().unwrap();
}

#[test]
fn zero_worker_engine_resolves_submissions_synchronously() {
    let d = tiny_dataset();
    let engine = Engine::builder()
        .model(
            "HT",
            Arc::new(HittingTimeRecommender::new(&d, GraphRecConfig::default())),
        )
        .workers(0)
        .build();
    assert_eq!(engine.queue_depth(), 0);
    let mut pending = engine.submit(RecommendRequest::new("HT", 0, 1)).unwrap();
    // Already resolved: the poll succeeds without any worker existing.
    let response = pending.try_recv().expect("inline submission is ready");
    assert!(response.is_ok());
    assert_eq!(engine.stats().completed, 1);
}

#[test]
fn try_recv_polls_and_wait_timeout_bounds() {
    let (engine, gate, mut in_flight) = gated_engine(4, AdmissionPolicy::Block);
    assert_eq!(in_flight.try_recv(), None, "request still parked");
    assert_eq!(
        in_flight.wait_timeout(Duration::from_millis(20)),
        None,
        "timeout elapses while the gate is closed"
    );
    gate.open();
    let response = in_flight
        .wait_timeout(HANG)
        .expect("opened gate resolves the request");
    assert!(response.is_ok());
    drop(engine);
}

#[test]
fn fixed_stopping_override_with_deadline_still_serves_exact_lists() {
    // A deadline-carrying Fixed request routes through the cancellable DP
    // form; with a generous deadline its list must equal the plain Fixed
    // list exactly (scores included).
    let d = tiny_dataset();
    let rec = HittingTimeRecommender::new(&d, GraphRecConfig::default());
    let engine = Engine::builder()
        .model("HT", Arc::new(rec.clone()))
        .workers(1)
        .build();
    let far = Instant::now() + Duration::from_secs(3600);
    let deadlined = engine
        .submit(
            RecommendRequest::new("HT", 0, 2)
                .with_stopping(DpStopping::Fixed)
                .deadline_at(far),
        )
        .unwrap()
        .wait()
        .unwrap();
    let mut ctx = ScoringContext::new();
    let mut direct = Vec::new();
    rec.recommend_into(
        0,
        2,
        &RecommendOptions::with_stopping(DpStopping::Fixed),
        &mut ctx,
        &mut direct,
    );
    assert_eq!(deadlined.items, direct);
    assert_eq!(items_of(&deadlined.items), items_of(&direct));
}
