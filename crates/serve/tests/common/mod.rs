//! Shared fixtures of the serve integration suites: the random-ratings
//! strategy, the all-families model roster, and the gate/gated-recommender
//! pattern that turns "worker busy, queue in a known state" into a
//! constructed condition instead of a race. Lives in a subdirectory so
//! cargo does not treat it as a test target of its own.

// Each suite compiles this module independently and uses a different
// subset of it.
#![allow(dead_code)]

use longtail_core::{
    AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender,
    AssociationRuleRecommender, GraphRecConfig, HittingTimeRecommender, KnnRecommender,
    LdaRecommender, PageRankRecommender, PopularityRecommender, PureSvdRecommender,
    RecommendOptions, Recommender, RuleConfig, ScoredItem, ScoringContext, UserSimilarity,
};
use longtail_data::{Dataset, Rating};
use longtail_serve::SharedRecommender;
use longtail_topics::LdaConfig;
use proptest::prelude::*;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

pub const N_USERS: usize = 8;
pub const N_ITEMS: usize = 10;

pub fn ratings() -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..N_USERS as u32, 0..N_ITEMS as u32, 1.0f64..5.0).prop_map(|(user, item, value)| {
            Rating {
                user,
                item,
                value: value.round().max(1.0),
            }
        }),
        1..60,
    )
}

/// Every family, trained deterministically on `d`, as engine-shareable
/// models keyed by registry name.
pub fn roster(d: &Dataset) -> Vec<(&'static str, SharedRecommender)> {
    let graph = GraphRecConfig::default();
    let ac = AbsorbingCostConfig::default();
    vec![
        (
            "HT",
            Arc::new(HittingTimeRecommender::new(d, graph)) as SharedRecommender,
        ),
        ("AT", Arc::new(AbsorbingTimeRecommender::new(d, graph))),
        (
            "AC1",
            Arc::new(AbsorbingCostRecommender::item_entropy(d, ac)),
        ),
        (
            "AC2",
            Arc::new(AbsorbingCostRecommender::topic_entropy_auto(d, 2, ac)),
        ),
        (
            "kNN",
            Arc::new(KnnRecommender::train(d, 3, UserSimilarity::Cosine)),
        ),
        (
            "rules",
            Arc::new(AssociationRuleRecommender::train(
                d,
                &RuleConfig {
                    min_support: 1,
                    min_confidence: 0.0,
                },
            )),
        ),
        ("svd", Arc::new(PureSvdRecommender::train(d, 4))),
        (
            "lda",
            Arc::new(LdaRecommender::train_with(
                d,
                &LdaConfig {
                    iterations: 15,
                    ..LdaConfig::with_topics(2)
                },
            )),
        ),
        ("ppr", Arc::new(PageRankRecommender::plain(d))),
        ("dppr", Arc::new(PageRankRecommender::discounted(d))),
        ("POP", Arc::new(PopularityRecommender::train(d))),
    ]
}

/// Generous bound for waits that must complete promptly; hitting it means
/// the contract under test is broken (a hang), not a slow machine.
pub const HANG: Duration = Duration::from_secs(30);

/// A test gate: `recommend_into` callers park on it until the test opens
/// it, and the test can wait until a known number of callers have arrived.
pub struct Gate {
    open: Mutex<bool>,
    opened: Condvar,
    entered: Mutex<usize>,
    arrived: Condvar,
}

impl Gate {
    pub fn closed() -> Arc<Self> {
        Arc::new(Self {
            open: Mutex::new(false),
            opened: Condvar::new(),
            entered: Mutex::new(0),
            arrived: Condvar::new(),
        })
    }

    /// Called by the gated recommender: announce arrival, park until open.
    pub fn pass(&self) {
        *self.entered.lock().unwrap() += 1;
        self.arrived.notify_all();
        let guard = self.open.lock().unwrap();
        let (_guard, timeout) = self
            .opened
            .wait_timeout_while(guard, HANG, |open| !*open)
            .unwrap();
        assert!(!timeout.timed_out(), "gate never opened");
    }

    pub fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.opened.notify_all();
    }

    /// Block until `n` callers have arrived at the gate.
    pub fn await_arrivals(&self, n: usize) {
        let guard = self.entered.lock().unwrap();
        let (_guard, timeout) = self
            .arrived
            .wait_timeout_while(guard, HANG, |entered| *entered < n)
            .unwrap();
        assert!(!timeout.timed_out(), "only {} arrivals", n);
    }
}

/// Wraps HT, parking every `recommend_into` on the gate — what makes the
/// "worker mid-request" state constructible — and logging the user ids it
/// serves in service order, so scheduling tests can assert dequeue order
/// rather than infer it.
pub struct GatedRecommender {
    pub inner: HittingTimeRecommender,
    pub gate: Arc<Gate>,
    /// User ids in the order requests entered the model (dequeue order,
    /// for a single-worker engine). Clone the `Arc` before boxing the
    /// recommender into a [`SharedRecommender`].
    pub served: Arc<Mutex<Vec<u32>>>,
}

impl GatedRecommender {
    pub fn new(inner: HittingTimeRecommender, gate: Arc<Gate>) -> Self {
        Self {
            inner,
            gate,
            served: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl Recommender for GatedRecommender {
    fn name(&self) -> &'static str {
        "gated"
    }

    fn score_into(&self, user: u32, ctx: &mut ScoringContext, out: &mut Vec<f64>) {
        self.inner.score_into(user, ctx, out);
    }

    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        self.gate.pass();
        self.served.lock().unwrap().push(user);
        self.inner.recommend_into(user, k, opts, ctx, out);
    }

    fn rated_items(&self, user: u32) -> &[u32] {
        self.inner.rated_items(user)
    }

    fn n_items(&self) -> usize {
        self.inner.n_items()
    }
}

/// A long user-item chain (user `i` rates items `i` and `i+1`): the HT
/// walk's values keep moving for many iterations, so no fixed point can
/// preempt the cooperative deadline check.
pub fn chain_dataset() -> Dataset {
    let mut ratings = Vec::new();
    for u in 0..24u32 {
        for item in [u, u + 1] {
            ratings.push(Rating {
                user: u,
                item,
                value: 4.0,
            });
        }
    }
    Dataset::from_ratings(24, 25, &ratings)
}

pub fn tiny_dataset() -> Dataset {
    Dataset::from_ratings(
        2,
        2,
        &[
            Rating {
                user: 0,
                item: 0,
                value: 5.0,
            },
            Rating {
                user: 1,
                item: 1,
                value: 4.0,
            },
        ],
    )
}
