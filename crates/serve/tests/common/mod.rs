//! Shared fixtures of the serve integration suites: the random-ratings
//! strategy and the all-families model roster. Lives in a subdirectory so
//! cargo does not treat it as a test target of its own.

use longtail_core::{
    AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender,
    AssociationRuleRecommender, GraphRecConfig, HittingTimeRecommender, KnnRecommender,
    LdaRecommender, PageRankRecommender, PopularityRecommender, PureSvdRecommender, RuleConfig,
    UserSimilarity,
};
use longtail_data::{Dataset, Rating};
use longtail_serve::SharedRecommender;
use longtail_topics::LdaConfig;
use proptest::prelude::*;
use std::sync::Arc;

pub const N_USERS: usize = 8;
pub const N_ITEMS: usize = 10;

pub fn ratings() -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..N_USERS as u32, 0..N_ITEMS as u32, 1.0f64..5.0).prop_map(|(user, item, value)| {
            Rating {
                user,
                item,
                value: value.round().max(1.0),
            }
        }),
        1..60,
    )
}

/// Every family, trained deterministically on `d`, as engine-shareable
/// models keyed by registry name.
pub fn roster(d: &Dataset) -> Vec<(&'static str, SharedRecommender)> {
    let graph = GraphRecConfig::default();
    let ac = AbsorbingCostConfig::default();
    vec![
        (
            "HT",
            Arc::new(HittingTimeRecommender::new(d, graph)) as SharedRecommender,
        ),
        ("AT", Arc::new(AbsorbingTimeRecommender::new(d, graph))),
        (
            "AC1",
            Arc::new(AbsorbingCostRecommender::item_entropy(d, ac)),
        ),
        (
            "AC2",
            Arc::new(AbsorbingCostRecommender::topic_entropy_auto(d, 2, ac)),
        ),
        (
            "kNN",
            Arc::new(KnnRecommender::train(d, 3, UserSimilarity::Cosine)),
        ),
        (
            "rules",
            Arc::new(AssociationRuleRecommender::train(
                d,
                &RuleConfig {
                    min_support: 1,
                    min_confidence: 0.0,
                },
            )),
        ),
        ("svd", Arc::new(PureSvdRecommender::train(d, 4))),
        (
            "lda",
            Arc::new(LdaRecommender::train_with(
                d,
                &LdaConfig {
                    iterations: 15,
                    ..LdaConfig::with_topics(2)
                },
            )),
        ),
        ("ppr", Arc::new(PageRankRecommender::plain(d))),
        ("dppr", Arc::new(PageRankRecommender::discounted(d))),
        ("POP", Arc::new(PopularityRecommender::train(d))),
    ]
}
