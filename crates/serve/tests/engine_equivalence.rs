//! Engine equivalence: property tests over random bipartite corpora.
//!
//! The engine adds routing, context pooling and a worker pool on top of
//! `Recommender::recommend_into`; none of that may ever change a ranking.
//! Three pinned contracts, each across all 8 recommender families:
//!
//! * **context pooling is invisible** — lists produced through
//!   [`ContextPool`]-recycled contexts are bit-identical to fresh-context
//!   lists, query after query;
//! * **`Engine::recommend` ≡ direct `recommend_into`** — same items, same
//!   ranks, same scores, for every registered model, under the default
//!   policy, a `Fixed` override, and request-scoped exclusions; batches
//!   through the persistent worker pool agree with the inline path;
//! * **sharded routing is transparent** — a sharded registration answers
//!   exactly what the owning shard's recommender answers directly, and
//!   reports the shard the router picked.
//!
//! Case counts honour `PROPTEST_CASES` (see `vendor/proptest`), which CI
//! pins so the suite stays bounded.

use longtail_core::{
    DpStopping, ExclusionSet, GraphRecConfig, HittingTimeRecommender, RecommendOptions, ScoredItem,
    ScoringContext,
};
use longtail_data::{Dataset, Rating};
use longtail_serve::{
    ContextPool, Engine, ModuloRouter, RecommendRequest, ServeError, SharedRecommender,
};
use proptest::prelude::*;
use std::sync::Arc;

mod common;
use common::{ratings, roster, N_ITEMS, N_USERS};

fn items_of(list: &[ScoredItem]) -> Vec<u32> {
    list.iter().map(|s| s.item).collect()
}

proptest! {
    /// (a) Pooled / recycled contexts are invisible: for every family, a
    /// list served through a `ContextPool`-checkout context (previously
    /// used by *other* families and users) is bit-identical to one from a
    /// fresh context.
    #[test]
    fn pooled_contexts_match_fresh_contexts(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let pool = ContextPool::new(2);
        let opts = RecommendOptions::default();
        let mut pooled = Vec::new();
        let mut fresh_list = Vec::new();
        for round in 0..2 {
            for (name, rec) in &roster(&d) {
                for u in 0..d.n_users() as u32 {
                    let mut ctx = pool.checkout();
                    rec.recommend_into(u, 5, &opts, &mut ctx, &mut pooled);
                    pool.checkin(ctx);
                    let mut fresh = ScoringContext::new();
                    rec.recommend_into(u, 5, &opts, &mut fresh, &mut fresh_list);
                    prop_assert_eq!(
                        &pooled,
                        &fresh_list,
                        "{} user {} round {}: pooled context diverged",
                        name,
                        u,
                        round
                    );
                }
            }
        }
    }

    /// (b) `Engine::recommend` ≡ direct `recommend_into` for every
    /// registered model — default policy, `Fixed` override, and a
    /// request-scoped exclusion set (handed to the engine unsorted, with
    /// duplicates) — and the worker-pool batch path agrees with inline.
    #[test]
    fn engine_matches_direct_recommend_into(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let models = roster(&d);
        let mut builder = Engine::builder().workers(2);
        for (name, rec) in &models {
            builder = builder.model(*name, Arc::clone(rec));
        }
        let engine = builder.build();
        let mut ctx = ScoringContext::new();
        let mut direct = Vec::new();
        // Unsorted, duplicated on purpose: the request builder normalizes
        // once at construction.
        let raw_exclude = vec![7u32, 2, 7, 4];
        let sorted_exclude = ExclusionSet::new(raw_exclude.clone());

        let mut batch = Vec::new();
        let mut expected_items = Vec::new();
        for (name, rec) in &models {
            for u in 0..d.n_users() as u32 {
                for (req, opts) in [
                    (
                        RecommendRequest::new(*name, u, 5),
                        RecommendOptions::default(),
                    ),
                    (
                        RecommendRequest::new(*name, u, 5).with_stopping(DpStopping::Fixed),
                        RecommendOptions::with_stopping(DpStopping::Fixed),
                    ),
                    (
                        RecommendRequest::new(*name, u, 5).excluding(raw_exclude.clone()),
                        RecommendOptions::excluding(&sorted_exclude),
                    ),
                ] {
                    let response = engine.recommend(&req).unwrap();
                    rec.recommend_into(u, 5, &opts, &mut ctx, &mut direct);
                    prop_assert_eq!(
                        &response.items,
                        &direct,
                        "{} user {}: engine diverged from direct path",
                        name,
                        u
                    );
                    prop_assert_eq!(response.model, rec.name());
                    prop_assert_eq!(response.shard, None);
                    batch.push(req);
                    expected_items.push(items_of(&direct));
                }
            }
        }
        // The same requests through the persistent worker pool.
        for (response, expected) in engine.recommend_batch(batch).into_iter().zip(&expected_items) {
            prop_assert_eq!(&items_of(&response.unwrap().items), expected);
        }
        // Aggregate telemetry accounted for every walk-family DP run.
        prop_assert!(engine.telemetry().queries > 0);
    }

    /// (c) Sharded routing is transparent: the engine's answer under a
    /// 2-shard `ModuloRouter` registration equals querying the owning
    /// shard's recommender directly, and the response names that shard.
    #[test]
    fn sharded_routing_matches_owning_shard(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        // Two genuinely different models per shard: different walk budgets.
        let shards: Vec<SharedRecommender> = vec![
            Arc::new(HittingTimeRecommender::new(
                &d,
                GraphRecConfig { max_items: 4, iterations: 15 },
            )),
            Arc::new(HittingTimeRecommender::new(&d, GraphRecConfig::default())),
        ];
        let engine = Engine::builder()
            .sharded_model("HT", Arc::new(ModuloRouter), shards.clone())
            .workers(1)
            .build();
        let opts = RecommendOptions::default();
        let mut ctx = ScoringContext::new();
        let mut direct = Vec::new();
        for u in 0..d.n_users() as u32 {
            let response = engine.recommend(&RecommendRequest::new("HT", u, 5)).unwrap();
            let owner = u as usize % shards.len();
            prop_assert_eq!(response.shard, Some(owner), "user {}", u);
            shards[owner].recommend_into(u, 5, &opts, &mut ctx, &mut direct);
            prop_assert_eq!(
                &response.items,
                &direct,
                "user {}: sharded answer diverged from owning shard",
                u
            );
        }
    }
}

#[test]
fn engine_rerank_threads_policy_and_provenance_end_to_end() {
    use longtail_core::{RerankIndex, RerankPolicy};
    use longtail_serve::Priority;

    // A corpus with a clear head/tail split so the policy has something
    // to act on.
    let mut rs = Vec::new();
    for u in 0..8u32 {
        for i in 0..10u32 {
            // Item popularity decays with id: item 0 rated by all, item 9
            // by one user.
            if u <= 9 - i {
                rs.push(Rating {
                    user: u,
                    item: i,
                    value: 4.0,
                });
            }
        }
    }
    let d = Dataset::from_ratings(8, 10, &rs);
    let rec: SharedRecommender =
        Arc::new(HittingTimeRecommender::new(&d, GraphRecConfig::default()));
    let index = Arc::new(RerankIndex::from_dataset(&d));
    let policy = RerankPolicy::new().mmr(0.3).popularity_penalty(0.25);

    // Engine A: no rerank configured — the raw fused baseline.
    let raw = Engine::builder()
        .model("HT", Arc::clone(&rec))
        .workers(0)
        .build();
    // Engine B: index attached, policy set as the Batch-class default.
    let engine = Engine::builder()
        .model("HT", Arc::clone(&rec))
        .rerank_index("HT", Arc::clone(&index))
        .class_rerank(Priority::Batch, policy)
        .workers(0)
        .build();

    let mut served = 0usize;
    for u in 0..8u32 {
        let baseline = raw.recommend(&RecommendRequest::new("HT", u, 4)).unwrap();
        assert!(baseline.provenance.is_none(), "no policy, no provenance");
        if baseline.items.is_empty() {
            // User 0 rated the whole reachable catalog: nothing to rank.
            continue;
        }
        served += 1;

        // Interactive (default class): no class policy resolves — raw order.
        let plain = engine
            .recommend(&RecommendRequest::new("HT", u, 4))
            .unwrap();
        assert_eq!(plain.items, baseline.items, "user {u}: must be raw");
        assert!(plain.provenance.is_none());

        // Batch class: the class default applies and provenance arrives.
        let req = RecommendRequest::new("HT", u, 4).with_priority(Priority::Batch);
        let reranked = engine.recommend(&req).unwrap();
        let prov = reranked.provenance.as_ref().expect("re-ranked response");
        assert_eq!(prov.len(), reranked.items.len());
        for (item, p) in reranked.items.iter().zip(prov) {
            assert_eq!(p.popularity_percentile, index.percentile(item.item));
            assert_eq!(p.tail, index.tail(item.item, policy.tail_cutoff));
        }
        // Same pool, same scores: the re-ranked list is a permutation of a
        // prefix of the over-fetched pool, so every served item must score
        // no better than the raw winner.
        assert!(reranked.items[0].score <= baseline.items[0].score + 1e-12);

        // A per-request disabled override beats the class default.
        let req = RecommendRequest::new("HT", u, 4)
            .with_priority(Priority::Batch)
            .with_rerank(RerankPolicy::default());
        let off = engine.recommend(&req).unwrap();
        assert_eq!(off.items, baseline.items, "user {u}: override must win");
        assert!(off.provenance.is_none());
    }
    assert!(
        served >= 6,
        "corpus must exercise the re-rank path: {served}"
    );
}

#[test]
fn unknown_model_is_an_error_not_a_panic() {
    let d = Dataset::from_ratings(
        2,
        2,
        &[Rating {
            user: 0,
            item: 0,
            value: 5.0,
        }],
    );
    let engine = Engine::builder()
        .model(
            "HT",
            Arc::new(HittingTimeRecommender::new(&d, GraphRecConfig::default())),
        )
        .workers(1)
        .build();
    let err = engine
        .recommend(&RecommendRequest::new("missing", 0, 3))
        .unwrap_err();
    assert_eq!(err, ServeError::UnknownModel("missing".into()));
    // Batch form returns the failure in place without poisoning the rest.
    let results = engine.recommend_batch(vec![
        RecommendRequest::new("missing", 0, 3),
        RecommendRequest::new("HT", 0, 3),
    ]);
    assert!(results[0].is_err());
    assert!(results[1].is_ok());
    assert_eq!(engine.models(), vec!["HT"]);
}

#[test]
fn panicking_request_fails_alone_without_killing_the_engine() {
    let d = Dataset::from_ratings(
        2,
        2,
        &[
            Rating {
                user: 0,
                item: 0,
                value: 5.0,
            },
            Rating {
                user: 1,
                item: 1,
                value: 4.0,
            },
        ],
    );
    let engine = Engine::builder()
        .model(
            "HT",
            Arc::new(HittingTimeRecommender::new(&d, GraphRecConfig::default())),
        )
        .workers(2)
        .build();
    // User 99 is outside the training data: the query panics inside the
    // recommender. The batch must fail only that slot, and the pool's
    // workers must survive to serve later traffic.
    let results = engine.recommend_batch(vec![
        RecommendRequest::new("HT", 0, 2),
        RecommendRequest::new("HT", 99, 2),
        RecommendRequest::new("HT", 1, 2),
    ]);
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(ServeError::RequestPanicked(_))));
    assert!(results[2].is_ok());
    // Both the batch path and the inline path still serve afterwards.
    let again = engine.recommend_batch(vec![RecommendRequest::new("HT", 0, 2)]);
    assert!(again[0].is_ok());
    assert!(engine.recommend(&RecommendRequest::new("HT", 1, 2)).is_ok());
    assert!(matches!(
        engine.recommend(&RecommendRequest::new("HT", 99, 2)),
        Err(ServeError::RequestPanicked(_))
    ));
}

#[test]
fn zero_worker_engine_serves_batches_inline() {
    let d = Dataset::from_ratings(
        2,
        2,
        &[
            Rating {
                user: 0,
                item: 0,
                value: 5.0,
            },
            Rating {
                user: 1,
                item: 1,
                value: 4.0,
            },
        ],
    );
    let engine = Engine::builder()
        .model(
            "HT",
            Arc::new(HittingTimeRecommender::new(&d, GraphRecConfig::default())),
        )
        .workers(0)
        .build();
    assert_eq!(engine.n_workers(), 0);
    let results = engine.recommend_batch(vec![
        RecommendRequest::new("HT", 0, 2),
        RecommendRequest::new("HT", 1, 2),
    ]);
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.is_ok()));
}

#[test]
fn per_request_telemetry_sums_into_engine_aggregate() {
    let d = Dataset::from_ratings(
        2,
        2,
        &[
            Rating {
                user: 0,
                item: 0,
                value: 5.0,
            },
            Rating {
                user: 1,
                item: 1,
                value: 4.0,
            },
        ],
    );
    let engine = Engine::builder()
        .model(
            "HT",
            Arc::new(HittingTimeRecommender::new(&d, GraphRecConfig::default())),
        )
        .workers(2)
        .build();
    let requests: Vec<RecommendRequest> = (0..6)
        .map(|i| RecommendRequest::new("HT", i % 2, 1))
        .collect();
    let mut per_request = 0u64;
    for result in engine.recommend_batch(requests) {
        let response = result.unwrap();
        assert_eq!(response.telemetry.queries, 1, "one DP run per HT query");
        per_request += response.telemetry.iterations_run;
    }
    let aggregate = engine.telemetry();
    assert_eq!(aggregate.queries, 6);
    assert_eq!(aggregate.iterations_run, per_request);
    engine.reset_telemetry();
    assert_eq!(engine.telemetry().queries, 0);
}
