//! Chaos suite: the engine under deterministic injected faults.
//!
//! Drives [`FaultyRecommender`] plans through engines with breakers,
//! retries and degraded-mode fallback armed, and pins the fault-tolerance
//! contracts:
//!
//! * **fault isolation** (property) — an engine with one fault-injected
//!   model serves byte-identical rankings for every *other* model versus a
//!   fault-free engine;
//! * **breaker lifecycle** — trips at the failure threshold, refuses fast
//!   (submit-time [`ServeError::CircuitOpen`] without spending a queue
//!   slot), and a successful half-open probe fully closes it;
//! * **retry** — a transient panic is retried on a fresh context and the
//!   request still answers non-degraded; a retry is abandoned only when
//!   the deadline has already passed (an oversized backoff is skipped, not
//!   fatal), and deadline-free requests stop at `max_attempts`;
//! * **fallback** — an unavailable primary serves the registered fallback
//!   with [`RecommendResponse::degraded`] set, exactly the fallback's own
//!   ranking; once the breaker opens, the primary is not even attempted;
//! * **poison refusal** — NaN/−∞ scores are refused typed and feed the
//!   breaker;
//! * **supervision** — a kill-marked worker death is detected and the
//!   worker respawned, keeping the configured pool size; a probe that
//!   kills its worker re-opens the breaker (never wedging it HalfOpen)
//!   and the respawned worker's next probe closes it.
//!
//! Case counts honour `PROPTEST_CASES` (see `vendor/proptest`), which CI
//! pins so the suite stays bounded.

use longtail_core::{PopularityRecommender, Recommender, ScoredItem};
use longtail_data::{Dataset, Rating};
use longtail_serve::{
    BreakerConfig, BreakerState, Engine, FaultKind, FaultPlan, FaultyRecommender, RecommendRequest,
    RetryPolicy, ServeError, SharedRecommender,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::{ratings, roster, N_ITEMS, N_USERS};

fn items_of(list: &[ScoredItem]) -> Vec<u32> {
    list.iter().map(|s| s.item).collect()
}

/// A small corpus every deterministic test shares.
fn corpus() -> Dataset {
    let ratings = [
        (0, 0, 5.0),
        (0, 1, 4.0),
        (1, 0, 4.0),
        (1, 2, 5.0),
        (2, 1, 3.0),
        (2, 3, 5.0),
        (3, 2, 4.0),
        (3, 4, 5.0),
    ]
    .map(|(user, item, value)| Rating { user, item, value });
    Dataset::from_ratings(4, 5, &ratings)
}

fn tight_breakers() -> BreakerConfig {
    BreakerConfig {
        window: 4,
        failure_threshold: 2,
        cooldown: Duration::from_secs(3600),
    }
}

proptest! {
    /// Fault isolation: wrap one model in a heavy seeded fault plan (with
    /// breakers, retries and a fallback armed) and hammer it; every
    /// *other* model's rankings — items and scores — stay byte-identical
    /// to a fault-free engine's, and come back non-degraded.
    #[test]
    fn faulty_model_never_perturbs_other_models(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let models = roster(&d);
        let plan = FaultPlan::new()
            .seeded(7, 0.4, FaultKind::Panic)
            .seeded(9, 0.3, FaultKind::NanScores);

        let mut chaotic = Engine::builder()
            .workers(0)
            .breakers(BreakerConfig {
                window: 4,
                failure_threshold: 2,
                cooldown: Duration::ZERO,
            })
            .default_retry(RetryPolicy::attempts(2))
            .fallback("HT", "POP");
        let mut clean = Engine::builder().workers(0);
        for (name, rec) in &models {
            clean = clean.model(*name, Arc::clone(rec));
            chaotic = chaotic.model(*name, Arc::clone(rec));
        }
        // Re-register HT fault-wrapped on the chaotic engine only.
        let ht = models.iter().find(|(n, _)| *n == "HT").unwrap().1.clone();
        let chaotic = chaotic
            .model("HT", Arc::new(FaultyRecommender::new(ht, plan)) as SharedRecommender)
            .build();
        let clean = clean.build();

        for _round in 0..3 {
            for u in 0..d.n_users() as u32 {
                // Hammer the faulty model; answers may be Ok (possibly
                // degraded) or typed errors — never a crash, and never
                // leakage into the other models below.
                let _ = chaotic.recommend(&RecommendRequest::new("HT", u, 5));
                for (name, _) in models.iter().filter(|(n, _)| *n != "HT") {
                    let req = RecommendRequest::new(*name, u, 5);
                    let with_chaos = chaotic.recommend(&req).unwrap();
                    let without = clean.recommend(&req).unwrap();
                    prop_assert!(!with_chaos.degraded, "{} user {}", name, u);
                    prop_assert_eq!(
                        &with_chaos.items,
                        &without.items,
                        "{} user {}: ranking perturbed by faulty sibling",
                        name,
                        u
                    );
                }
            }
        }
    }
}

#[test]
fn retry_recovers_from_transient_panic() {
    let d = corpus();
    let plan = FaultPlan::new().fault_on_call(0, FaultKind::Panic);
    let pop = Arc::new(PopularityRecommender::train(&d));
    let engine = Engine::builder()
        .workers(0)
        .model(
            "POP",
            Arc::new(FaultyRecommender::new(pop.clone(), plan)) as SharedRecommender,
        )
        .default_retry(RetryPolicy::attempts(2))
        .build();

    let resp = engine
        .recommend(&RecommendRequest::new("POP", 0, 3))
        .expect("second attempt must serve");
    assert!(!resp.degraded);
    assert_eq!(resp.items, pop.recommend(0, 3));
    let stats = engine.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.retries, 1, "one extra attempt");
    assert_eq!(stats.contexts_discarded, 1, "panicked context dropped");
    assert_eq!(stats.panicked, 0, "the request did not fail");
}

#[test]
fn retry_starts_within_deadline_even_when_backoff_would_not_fit() {
    // Regression for the over-eager abandon guard: the old check refused
    // to retry whenever `now + backoff >= deadline`, turning a perfectly
    // servable retry into a guaranteed failure. A retry only needs to
    // *start* before the deadline (the DP cancels cooperatively if it then
    // expires), so an oversized backoff is skipped — the retry runs
    // immediately — rather than abandoned.
    let d = corpus();
    let plan = FaultPlan::new().fault_on_call(0, FaultKind::Panic);
    let pop = Arc::new(PopularityRecommender::train(&d));
    let engine = Engine::builder()
        .workers(0)
        .model(
            "POP",
            Arc::new(FaultyRecommender::new(pop.clone(), plan)) as SharedRecommender,
        )
        .build();

    let started = std::time::Instant::now();
    let resp = engine
        .recommend(
            &RecommendRequest::new("POP", 0, 3)
                .with_retry(RetryPolicy::attempts(2).with_backoff(Duration::from_secs(10)))
                .deadline_in(Duration::from_secs(2)),
        )
        .expect("the retry fits the deadline; the backoff must not");
    assert!(!resp.degraded);
    assert_eq!(resp.items, pop.recommend(0, 3));
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "the 10s backoff must have been skipped, not slept"
    );
    let stats = engine.stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.expired_at_dequeue + stats.expired_in_dp, 0);
}

#[test]
fn deadline_free_requests_retry_exactly_max_attempts_times() {
    // The boundary's other side: with no deadline there is no time-based
    // abandon at all, so `max_attempts` must be what stops a persistently
    // failing request — never an unbounded spin.
    let d = corpus();
    let faulty = Arc::new(FaultyRecommender::new(
        Arc::new(PopularityRecommender::train(&d)),
        FaultPlan::new().fault_every(1, 0, FaultKind::Panic),
    ));
    let engine = Engine::builder()
        .workers(0)
        .model("POP", faulty.clone() as SharedRecommender)
        .build();

    let err = engine
        .recommend(&RecommendRequest::new("POP", 0, 3).with_retry(RetryPolicy::attempts(3)))
        .unwrap_err();
    assert!(matches!(err, ServeError::RequestPanicked(_)));
    assert_eq!(faulty.calls_made(), 3, "exactly max_attempts attempts");
    let stats = engine.stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.panicked, 1, "one failed request, not one per attempt");
}

#[test]
fn fallback_serves_degraded_and_open_breaker_stops_feeding_primary() {
    let d = corpus();
    let faulty = Arc::new(FaultyRecommender::new(
        Arc::new(PopularityRecommender::train(&d)),
        FaultPlan::new().fault_every(1, 0, FaultKind::Panic),
    ));
    let pop = Arc::new(PopularityRecommender::train(&d));
    let engine = Engine::builder()
        .workers(0)
        .model("primary", faulty.clone() as SharedRecommender)
        .model("POP", pop.clone() as SharedRecommender)
        .fallback("primary", "POP")
        .breakers(tight_breakers())
        .build();

    let req = |user| RecommendRequest::new("primary", user, 3).excluding(vec![4]);
    for user in 0..4u32 {
        let resp = engine.recommend(&req(user)).expect("fallback must answer");
        assert!(resp.degraded, "user {user}: primary always panics");
        assert_eq!(resp.model, "POP");
        // The degraded list is exactly the fallback's own ranking, request
        // exclusions included.
        let direct = pop.recommend(user, 3);
        let direct: Vec<ScoredItem> = direct.into_iter().filter(|s| s.item != 4).collect();
        assert_eq!(items_of(&resp.items), items_of(&direct), "user {user}");
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.degraded, 4);

    // Two panics tripped the breaker (threshold 2); with the hour-long
    // cooldown, requests 3 and 4 were answered without the primary being
    // attempted at all.
    let health = engine.health();
    let primary = health.models.iter().find(|m| m.name == "primary").unwrap();
    assert_eq!(primary.breakers, vec![BreakerState::Open]);
    assert_eq!(primary.fallback.as_deref(), Some("POP"));
    assert!(!health.all_healthy());
    assert_eq!(
        faulty.calls_made(),
        2,
        "open breaker must stop feeding the primary"
    );
}

#[test]
fn open_breaker_without_fallback_fails_fast_at_submit() {
    let d = corpus();
    let faulty = Arc::new(FaultyRecommender::new(
        Arc::new(PopularityRecommender::train(&d)),
        FaultPlan::new().fault_every(1, 0, FaultKind::Panic),
    ));
    let engine = Engine::builder()
        .workers(0)
        .model("primary", faulty as SharedRecommender)
        .breakers(tight_breakers())
        .build();

    // Trip: two panics (no retries, no fallback → typed failures).
    for user in 0..2u32 {
        let err = engine
            .recommend(&RecommendRequest::new("primary", user, 3))
            .unwrap_err();
        assert!(matches!(err, ServeError::RequestPanicked(_)));
    }
    let before = engine.stats();

    // Fail fast: refused at submit, before any queue slot or context is
    // spent — `submitted` must not move.
    let err = engine
        .submit(RecommendRequest::new("primary", 2, 3))
        .unwrap_err();
    assert_eq!(err, ServeError::CircuitOpen);
    assert_eq!(engine.queue_depth(), 0);
    let after = engine.stats().since(&before);
    assert_eq!(after.circuit_open, 1);
    assert_eq!(after.submitted, 0, "a refused request is never admitted");
    assert_eq!(after.dropped(), 0, "breaker refusals are not drops");

    // The inline path refuses typed too.
    let err = engine
        .recommend(&RecommendRequest::new("primary", 2, 3))
        .unwrap_err();
    assert_eq!(err, ServeError::CircuitOpen);
}

#[test]
fn successful_probe_fully_closes_breaker() {
    let d = corpus();
    // Calls 0 and 1 panic; everything after serves cleanly.
    let plan = FaultPlan::new()
        .fault_on_call(0, FaultKind::Panic)
        .fault_on_call(1, FaultKind::Panic);
    let pop = Arc::new(PopularityRecommender::train(&d));
    let engine = Engine::builder()
        .workers(0)
        .model(
            "POP",
            Arc::new(FaultyRecommender::new(pop.clone(), plan)) as SharedRecommender,
        )
        .breakers(BreakerConfig {
            window: 4,
            failure_threshold: 2,
            cooldown: Duration::ZERO,
        })
        .build();

    let req = RecommendRequest::new("POP", 0, 3);
    assert!(engine.recommend(&req).is_err());
    assert!(engine.recommend(&req).is_err());
    // Zero cooldown: the next request is the half-open probe; the model
    // has recovered, so the probe serves and fully closes the breaker.
    let resp = engine.recommend(&req).expect("probe must serve");
    assert!(!resp.degraded);
    assert_eq!(resp.items, pop.recommend(0, 3));
    let health = engine.health();
    assert_eq!(health.models[0].breakers, vec![BreakerState::Closed]);
    assert_eq!(health.models[0].breaker_trips, 1);
    assert!(health.all_healthy());
    // And stays closed for normal traffic.
    for user in 0..4u32 {
        assert!(engine
            .recommend(&RecommendRequest::new("POP", user, 3))
            .is_ok());
    }
}

#[test]
fn poisoned_scores_are_refused_and_feed_the_breaker() {
    let d = corpus();
    let plan = FaultPlan::new()
        .fault_on_call(0, FaultKind::NanScores)
        .fault_on_call(1, FaultKind::NegInfScores);
    let engine = Engine::builder()
        .workers(0)
        .model(
            "POP",
            Arc::new(FaultyRecommender::new(
                Arc::new(PopularityRecommender::train(&d)),
                plan,
            )) as SharedRecommender,
        )
        .breakers(tight_breakers())
        .build();

    for user in 0..2u32 {
        let err = engine
            .recommend(&RecommendRequest::new("POP", user, 3))
            .unwrap_err();
        assert_eq!(err, ServeError::PoisonedScores, "user {user}");
    }
    let stats = engine.stats();
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.contexts_discarded, 0, "no panic: contexts survive");
    // Two poisons == threshold: the breaker is open.
    assert_eq!(engine.health().models[0].breakers, vec![BreakerState::Open]);
}

#[test]
fn killed_worker_is_respawned_by_supervision() {
    let d = corpus();
    let plan = FaultPlan::new().fault_on_call(0, FaultKind::KillWorker);
    let engine = Engine::builder()
        .workers(1)
        .model(
            "POP",
            Arc::new(FaultyRecommender::new(
                Arc::new(PopularityRecommender::train(&d)),
                plan,
            )) as SharedRecommender,
        )
        .build();

    // The kill-marked request is still answered before the worker dies.
    let err = engine
        .submit(RecommendRequest::new("POP", 0, 3))
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(
        matches!(&err, ServeError::RequestPanicked(msg)
            if msg.contains(longtail_serve::WORKER_KILL_MARK)),
        "unexpected error: {err:?}"
    );

    // Supervision (run by health/submit) notices the death and respawns;
    // the notice is filed as the thread unwinds, so poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while engine.stats().workers_restarted == 0 {
        engine.health();
        assert!(
            std::time::Instant::now() < deadline,
            "supervision never respawned the killed worker"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(engine.n_workers(), 1, "pool back at configured size");
    let health = engine.health();
    assert_eq!(health.workers_alive, 1);
    assert_eq!(health.workers_configured, 1);

    // The respawned worker serves (call 1 of the plan is clean).
    let resp = engine
        .submit(RecommendRequest::new("POP", 1, 3))
        .unwrap()
        .wait()
        .expect("respawned worker must serve");
    assert!(!resp.degraded);
    assert_eq!(engine.stats().workers_restarted, 1);
}

#[test]
fn probe_that_kills_its_worker_reopens_breaker_and_recovers() {
    // Chaos regression for the wedged-HalfOpen bug: the half-open state
    // holds a single probe token, and a probe whose worker dies must hand
    // it back (breaker → Open) rather than leave the breaker HalfOpen
    // forever with the token leaked — which would refuse every future
    // request with no path back to Closed.
    let d = corpus();
    // Calls 0 and 1 trip the breaker; call 2 is the probe, which takes its
    // worker down; call 3 (the respawned worker's probe) serves cleanly.
    let plan = FaultPlan::new()
        .fault_on_call(0, FaultKind::Panic)
        .fault_on_call(1, FaultKind::Panic)
        .fault_on_call(2, FaultKind::KillWorker);
    let pop = Arc::new(PopularityRecommender::train(&d));
    let engine = Engine::builder()
        .workers(1)
        .model(
            "POP",
            Arc::new(FaultyRecommender::new(pop.clone(), plan)) as SharedRecommender,
        )
        .breakers(BreakerConfig {
            window: 4,
            failure_threshold: 2,
            cooldown: Duration::ZERO,
        })
        .build();

    let send = |user| {
        engine
            .submit(RecommendRequest::new("POP", user, 3))
            .unwrap()
            .wait()
    };
    assert!(send(0).is_err());
    assert!(send(1).is_err()); // breaker trips (threshold 2)

    // Zero cooldown: this request is the half-open probe — and it kills
    // the worker on its way out.
    let err = send(2).unwrap_err();
    assert!(
        matches!(&err, ServeError::RequestPanicked(msg)
            if msg.contains(longtail_serve::WORKER_KILL_MARK)),
        "unexpected error: {err:?}"
    );
    // The dead probe must not wedge the breaker HalfOpen: it is Open
    // again, cooling down toward the next probe.
    let state = engine.health().models[0].breakers[0];
    assert_eq!(state, BreakerState::Open, "probe death must re-open");

    // Supervision respawns the killed worker (poll as the thread unwinds).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while engine.stats().workers_restarted == 0 {
        engine.health();
        assert!(
            std::time::Instant::now() < deadline,
            "supervision never respawned the killed worker"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // The engine recovered end to end: the next request is a fresh probe
    // on the respawned worker; it serves and fully closes the breaker.
    let resp = send(3).expect("recovered probe must serve");
    assert!(!resp.degraded);
    assert_eq!(resp.items, pop.recommend(3, 3));
    let health = engine.health();
    assert_eq!(health.models[0].breakers, vec![BreakerState::Closed]);
    assert!(health.all_healthy());
}

#[test]
fn latency_fault_blows_the_deadline_typed() {
    let d = corpus();
    let plan = FaultPlan::new().fault_on_call(0, FaultKind::Latency(Duration::from_millis(50)));
    let engine = Engine::builder()
        .workers(0)
        .model(
            "POP",
            Arc::new(FaultyRecommender::new(
                Arc::new(PopularityRecommender::train(&d)),
                plan,
            )) as SharedRecommender,
        )
        .build();

    // POP runs no DP loop, so the injected sleep surfaces as a served
    // response (the cooperative mid-DP check belongs to the walk family);
    // a request whose deadline has *already* passed when picked up is shed
    // typed — that path is what we pin here.
    let expired = RecommendRequest::new("POP", 0, 3)
        .deadline_at(std::time::Instant::now() - Duration::from_millis(1));
    assert_eq!(
        engine.recommend(&expired).unwrap_err(),
        ServeError::DeadlineExceeded
    );
    assert_eq!(engine.stats().expired_at_dequeue, 1);
}

#[test]
fn builder_rejects_bad_fallback_wiring() {
    let d = corpus();
    let build = |fallback: &'static str| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Engine::builder()
                .workers(0)
                .model(
                    "POP",
                    Arc::new(PopularityRecommender::train(&d)) as SharedRecommender,
                )
                .fallback("POP", fallback)
                .build()
        }))
    };
    assert!(build("missing").is_err(), "fallback must be registered");
    assert!(build("POP").is_err(), "a model cannot be its own fallback");
}
