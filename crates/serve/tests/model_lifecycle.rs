//! Lifecycle suite: versioned registry slots and atomic hot swap.
//!
//! Pins the deploy contracts of [`Engine::deploy`]:
//!
//! * **version pinning** (constructed, not raced) — a request parked *mid
//!   execution* when a deploy lands completes on the version it resolved,
//!   while a request queued behind it serves on the new one;
//! * **no lost requests** — a deploy under concurrent load completes every
//!   in-flight submission, each on exactly one version, with the engine's
//!   ledgers accounting for all of them;
//! * **ordering** — requests submitted after `deploy` returns serve on the
//!   new version, unconditionally;
//! * **retirement** — an old version is reported retired once its last
//!   in-flight pin drops, and never before the swap;
//! * **breaker reset** — a tripped breaker does not follow the model
//!   across a deploy: the new version starts with a fresh, closed breaker;
//! * **typed errors** — deploying to an unregistered name fails with
//!   [`ServeError::UnknownModel`]; topology mismatches (deploying a
//!   sharded group without naming a shard, or shard-deploying an unsharded
//!   model) panic like the builder's shape asserts.

use longtail_core::{GraphRecConfig, HittingTimeRecommender, PopularityRecommender, Recommender};
use longtail_data::{Dataset, Rating};
use longtail_serve::{
    BreakerConfig, BreakerState, Engine, FaultKind, FaultPlan, FaultyRecommender, ModelProvenance,
    ModuloRouter, RecommendRequest, RetryPolicy, ServeError, SharedRecommender,
};
use std::sync::Arc;

mod common;
use common::{Gate, GatedRecommender};

/// A small corpus every test shares.
fn corpus() -> Dataset {
    let ratings = [
        (0, 0, 5.0),
        (0, 1, 3.0),
        (0, 4, 3.0),
        (0, 5, 5.0),
        (1, 0, 5.0),
        (1, 1, 4.0),
        (1, 2, 5.0),
        (1, 4, 4.0),
        (1, 5, 5.0),
        (2, 0, 4.0),
        (2, 1, 5.0),
        (2, 2, 4.0),
        (3, 2, 5.0),
        (3, 3, 5.0),
        (4, 1, 4.0),
        (4, 2, 5.0),
    ]
    .map(|(user, item, value)| Rating { user, item, value });
    Dataset::from_ratings(5, 6, &ratings)
}

/// A corpus whose popularity ordering *differs* from [`corpus`]'s, so the
/// POP models trained on the two are distinguishable by their rankings —
/// a response's items prove which version served it, independently of the
/// version field.
fn shifted_corpus() -> Dataset {
    let ratings = [
        (0, 3, 5.0),
        (1, 3, 4.0),
        (2, 3, 3.0),
        (3, 3, 2.0),
        (0, 5, 5.0),
        (1, 5, 4.0),
        (2, 5, 3.0),
        (4, 0, 5.0),
    ]
    .map(|(user, item, value)| Rating { user, item, value });
    Dataset::from_ratings(5, 6, &ratings)
}

fn items_of(list: &[longtail_core::ScoredItem]) -> Vec<u32> {
    list.iter().map(|s| s.item).collect()
}

#[test]
fn in_flight_requests_pin_their_version_across_a_deploy() {
    let d = corpus();
    let graph = GraphRecConfig::default();
    let gate = Gate::closed();
    let gated = GatedRecommender::new(HittingTimeRecommender::new(&d, graph), Arc::clone(&gate));
    let engine = Engine::builder()
        .model("HT", Arc::new(gated))
        .workers(1)
        .build();

    // R1 enters the (gated) version-1 model and parks mid-execution.
    let r1 = engine.submit(RecommendRequest::new("HT", 0, 3)).unwrap();
    gate.await_arrivals(1);

    // The deploy lands while R1 is in flight; version 2 is ungated.
    let v2: SharedRecommender = Arc::new(HittingTimeRecommender::new(&d, graph));
    assert_eq!(engine.deploy("HT", v2).unwrap(), 2);

    // Version 1 must not retire while R1 still holds its pin.
    let health = engine.health();
    let history = &health.models[0].deploy_history[0];
    assert_eq!(history.len(), 2);
    assert!(
        !history[0].retired,
        "version 1 reported retired while a request was executing on it"
    );

    // R2 queues behind R1 (single worker) and resolves after the swap.
    let r2 = engine.submit(RecommendRequest::new("HT", 0, 3)).unwrap();
    gate.open();
    let a = r1.wait().expect("pinned request completes");
    let b = r2.wait().expect("post-deploy request completes");
    assert_eq!(a.version, 1, "in-flight request jumped versions");
    assert_eq!(
        b.version, 2,
        "post-deploy request served on the old version"
    );
    // Same underlying model either side of the swap: identical ranking.
    assert_eq!(items_of(&a.items), items_of(&b.items));

    // With the pin released, version 1 retires; version 2 is active.
    let health = engine.health();
    let model = &health.models[0];
    assert_eq!(model.versions, vec![2]);
    let history = &model.deploy_history[0];
    assert!(
        history[0].retired,
        "version 1 kept alive after its last pin"
    );
    assert!(!history[1].retired);
}

#[test]
fn hot_swap_under_concurrent_load_loses_no_requests() {
    let v1_train = corpus();
    let v2_train = shifted_corpus();
    let v1 = PopularityRecommender::train(&v1_train);
    let v2 = PopularityRecommender::train(&v2_train);
    // Expected ranking per (version, user), computed outside the engine.
    let expect = |rec: &PopularityRecommender, user: u32| items_of(&rec.recommend(user, 3));

    let engine = Engine::builder()
        .model("POP", Arc::new(PopularityRecommender::train(&v1_train)))
        .workers(4)
        .build();

    // First wave: submitted before the deploy, may land on either side of
    // it depending on when each worker dequeues.
    const WAVE: u32 = 200;
    let first: Vec<_> = (0..WAVE)
        .map(|i| {
            engine
                .submit(RecommendRequest::new("POP", i % 5, 3))
                .unwrap()
        })
        .collect();
    assert_eq!(
        engine
            .deploy("POP", Arc::new(PopularityRecommender::train(&v2_train)))
            .unwrap(),
        2
    );
    // Second wave: submitted after deploy returned — new version only.
    let second: Vec<_> = (0..WAVE)
        .map(|i| {
            engine
                .submit(RecommendRequest::new("POP", i % 5, 3))
                .unwrap()
        })
        .collect();

    let mut served = 0u64;
    for (wave, pending) in [(1u32, first), (2u32, second)] {
        for (i, p) in pending.into_iter().enumerate() {
            let user = i as u32 % 5;
            let r = p.wait().expect("no request may be lost across a deploy");
            served += 1;
            // Exactly one version served it, and the items prove the
            // version field is honest.
            match r.version {
                1 => assert_eq!(items_of(&r.items), expect(&v1, user)),
                2 => assert_eq!(items_of(&r.items), expect(&v2, user)),
                v => panic!("response claims unknown version {v}"),
            }
            if wave == 2 {
                assert_eq!(r.version, 2, "post-deploy submission served stale");
            }
        }
    }

    // The ledgers account for every submission: nothing dropped, nothing
    // double-counted, nothing failed.
    let stats = engine.stats();
    assert_eq!(served, 2 * WAVE as u64);
    assert_eq!(stats.submitted, served);
    assert_eq!(stats.completed, served);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.shed + stats.rejected + stats.cancelled_at_shutdown, 0);
}

#[test]
fn deploy_resets_the_breaker_and_carries_ledgers() {
    let d = corpus();
    // Version 1 always panics: trip its breaker open.
    let faulty: SharedRecommender = Arc::new(FaultyRecommender::new(
        Arc::new(PopularityRecommender::train(&d)),
        FaultPlan::new().fault_every(1, 0, FaultKind::Panic),
    ));
    std::panic::set_hook(Box::new(|_| {}));
    let engine = Engine::builder()
        .model("POP", faulty)
        .breakers(BreakerConfig {
            window: 4,
            failure_threshold: 2,
            cooldown: std::time::Duration::from_secs(3600),
        })
        .default_retry(RetryPolicy::attempts(1))
        .workers(0)
        .build();
    for user in 0..2 {
        let err = engine.recommend(&RecommendRequest::new("POP", user, 3));
        assert!(matches!(err, Err(ServeError::RequestPanicked(_))));
    }
    let before = engine.health();
    assert_eq!(before.models[0].breakers, vec![BreakerState::Open]);
    let panicked_before = engine.stats().panicked;
    assert_eq!(panicked_before, 2);

    // Deploy a healthy version 2: its breaker starts fresh and closed
    // (failure evidence against v1 says nothing about v2), while the
    // engine-lifetime failure ledger carries across the swap.
    engine
        .deploy("POP", Arc::new(PopularityRecommender::train(&d)))
        .unwrap();
    let after = engine.health();
    assert_eq!(after.models[0].breakers, vec![BreakerState::Closed]);
    assert_eq!(after.models[0].versions, vec![2]);
    assert_eq!(engine.stats().panicked, panicked_before);
    let ok = engine
        .recommend(&RecommendRequest::new("POP", 0, 3))
        .unwrap();
    assert_eq!(ok.version, 2);
    let _ = std::panic::take_hook();
}

#[test]
fn sharded_groups_deploy_per_shard_independently() {
    let d = corpus();
    let shards: Vec<SharedRecommender> = (0..2)
        .map(|_| Arc::new(PopularityRecommender::train(&d)) as SharedRecommender)
        .collect();
    let engine = Engine::builder()
        .sharded_model("POP", Arc::new(ModuloRouter), shards)
        .workers(0)
        .build();
    // Users 1, 3 route to shard 1; users 0, 2, 4 to shard 0.
    assert_eq!(
        engine
            .deploy_shard("POP", 1, Arc::new(PopularityRecommender::train(&corpus())))
            .unwrap(),
        2
    );
    let on_new = engine
        .recommend(&RecommendRequest::new("POP", 1, 3))
        .unwrap();
    let on_old = engine
        .recommend(&RecommendRequest::new("POP", 0, 3))
        .unwrap();
    assert_eq!((on_new.shard, on_new.version), (Some(1), 2));
    assert_eq!((on_old.shard, on_old.version), (Some(0), 1));
    let health = engine.health();
    assert_eq!(health.models[0].versions, vec![1, 2]);
    assert_eq!(health.models[0].deploy_history[0].len(), 1);
    assert_eq!(health.models[0].deploy_history[1].len(), 2);
}

#[test]
fn deploy_reports_provenance_in_health() {
    let d = corpus();
    let engine = Engine::builder()
        .model("POP", Arc::new(PopularityRecommender::train(&d)))
        .workers(0)
        .build();
    let path = std::path::PathBuf::from("/models/pop_v2.snap");
    engine
        .deploy_from(
            "POP",
            Arc::new(PopularityRecommender::train(&d)),
            ModelProvenance::Snapshot(path.clone()),
        )
        .unwrap();
    let health = engine.health();
    let model = &health.models[0];
    assert_eq!(model.provenance, vec![ModelProvenance::Snapshot(path)]);
    assert_eq!(
        model.deploy_history[0][0].provenance,
        ModelProvenance::InProcess
    );
    assert_eq!(
        format!("{}", model.provenance[0]),
        "snapshot /models/pop_v2.snap"
    );
    assert_eq!(
        format!("{}", model.deploy_history[0][0].provenance),
        "trained in-process"
    );
}

#[test]
fn deploying_an_unknown_model_fails_typed() {
    let engine = Engine::builder()
        .model("POP", Arc::new(PopularityRecommender::train(&corpus())))
        .workers(0)
        .build();
    let err = engine.deploy("nope", Arc::new(PopularityRecommender::train(&corpus())));
    assert_eq!(err.unwrap_err(), ServeError::UnknownModel("nope".into()));
    let err = engine.deploy_shard("nope", 0, Arc::new(PopularityRecommender::train(&corpus())));
    assert_eq!(err.unwrap_err(), ServeError::UnknownModel("nope".into()));
}

#[test]
#[should_panic(expected = "sharded")]
fn deploying_a_sharded_group_without_a_shard_panics() {
    let d = corpus();
    let shards: Vec<SharedRecommender> = (0..2)
        .map(|_| Arc::new(PopularityRecommender::train(&d)) as SharedRecommender)
        .collect();
    let engine = Engine::builder()
        .sharded_model("POP", Arc::new(ModuloRouter), shards)
        .workers(0)
        .build();
    let _ = engine.deploy("POP", Arc::new(PopularityRecommender::train(&d)));
}

#[test]
#[should_panic(expected = "not sharded")]
fn shard_deploying_an_unsharded_model_panics() {
    let d = corpus();
    let engine = Engine::builder()
        .model("POP", Arc::new(PopularityRecommender::train(&d)))
        .workers(0)
        .build();
    let _ = engine.deploy_shard("POP", 0, Arc::new(PopularityRecommender::train(&d)));
}

#[test]
#[should_panic(expected = "out of range")]
fn deploying_an_out_of_range_shard_panics() {
    let d = corpus();
    let shards: Vec<SharedRecommender> = (0..2)
        .map(|_| Arc::new(PopularityRecommender::train(&d)) as SharedRecommender)
        .collect();
    let engine = Engine::builder()
        .sharded_model("POP", Arc::new(ModuloRouter), shards)
        .workers(0)
        .build();
    let _ = engine.deploy_shard("POP", 2, Arc::new(PopularityRecommender::train(&d)));
}
