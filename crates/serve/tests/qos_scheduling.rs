//! The QoS scheduler's contracts.
//!
//! * **Order, not contents** — the scheduler may reorder and shed, but a
//!   request it serves returns a ranking identical to calling the routed
//!   recommender directly: proptested across every family with the single
//!   worker parked so the whole mixed-priority batch is reordered in the
//!   queue, under a binding per-model quota (`ShedOldest`).
//! * **Strict priority + EDF** — with the worker parked and a scrambled
//!   submission order, the served order is class-ascending, then earliest
//!   deadline, then arrival (deadline-free requests after deadlined ones).
//! * **Quotas** — one model's burst is refused at its quota while the
//!   queue still has room for other models.
//! * **Slack shedding** — once the EWMA of a model's service time proves
//!   a deadline unmeetable, the request is dropped at dequeue without the
//!   model ever running (`shed_unmeetable`); a meetable deadline on the
//!   same engine still serves.
//! * **Per-class ledger** — in every test:
//!   `submitted = served + shed + expired + failed` per class.

use longtail_core::{
    GraphRecConfig, HittingTimeRecommender, RecommendOptions, Recommender, ScoredItem,
    ScoringContext,
};
use longtail_data::Dataset;
use longtail_serve::{
    AdmissionPolicy, Engine, EngineStats, Priority, RecommendRequest, SchedPolicy, ServeError,
    SharedRecommender,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

mod common;
use common::{
    chain_dataset, ratings, roster, tiny_dataset, Gate, GatedRecommender, N_ITEMS, N_USERS,
};

/// Assert the per-class ledger balances in `stats`.
fn assert_class_ledger(stats: &EngineStats) {
    for (class, priority) in stats.per_class.iter().zip(Priority::ALL) {
        assert_eq!(
            class.submitted,
            class.served + class.shed + class.expired + class.failed,
            "{} ledger out of balance: {:?}",
            priority.name(),
            class
        );
    }
}

proptest! {
    /// EDF ordering and per-model quotas never change the *contents* of a
    /// served ranking. The single worker is parked on a gated request, so
    /// every submission below is reordered in the queue by the Qos
    /// scheduler before service; the quota of 3 (against 4 requests per
    /// model) forces the shed path too. Every request that comes back `Ok`
    /// must match direct `recommend_into` item-for-item, score-for-score.
    #[test]
    fn qos_reorders_and_sheds_but_never_perturbs_served_rankings(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let models = roster(&d);
        let gate = Gate::closed();
        let gated = GatedRecommender::new(
            HittingTimeRecommender::new(&d, GraphRecConfig::default()),
            Arc::clone(&gate),
        );
        let mut builder = Engine::builder()
            .workers(1)
            .queue_capacity(256)
            .admission(AdmissionPolicy::ShedOldest)
            .scheduling(SchedPolicy::Qos)
            .model_quota(3)
            .model("gated", Arc::new(gated) as SharedRecommender);
        for (name, rec) in &models {
            builder = builder.model(*name, Arc::clone(rec));
        }
        let engine = builder.build();
        let parked = engine.submit(RecommendRequest::new("gated", 0, 3)).unwrap();
        gate.await_arrivals(1); // worker held mid-request, queue empty

        // Mixed classes, mixed deadlines (all generous: nothing expires),
        // four requests per model against a quota of three.
        let far = Instant::now() + Duration::from_secs(3600);
        let classes = [Priority::Interactive, Priority::Batch, Priority::Background];
        let mut submitted = Vec::new();
        for (mi, (name, _)) in models.iter().enumerate() {
            for u in 0..4u32 {
                let i = mi * 4 + u as usize;
                let mut req = RecommendRequest::new(*name, u % N_USERS as u32, 5)
                    .with_priority(classes[i % classes.len()]);
                if i.is_multiple_of(2) {
                    req = req.deadline_at(far);
                }
                let pending = engine.submit(req.clone()).expect("quota sheds, never refuses");
                submitted.push((pending, req));
            }
        }
        gate.open();
        prop_assert!(parked.wait().is_ok());

        let mut ctx = ScoringContext::new();
        let mut direct: Vec<ScoredItem> = Vec::new();
        let opts = RecommendOptions::default();
        let (mut served, mut shed) = (0u64, 0u64);
        for (pending, req) in submitted {
            match pending.wait() {
                Ok(resp) => {
                    let (_, rec) = models
                        .iter()
                        .find(|(n, _)| req.model == *n)
                        .expect("submitted model is in the roster");
                    rec.recommend_into(req.user, req.k, &opts, &mut ctx, &mut direct);
                    prop_assert_eq!(
                        &resp.items, &direct,
                        "{} user {}: scheduler perturbed a served ranking",
                        req.model, req.user
                    );
                    served += 1;
                }
                Err(ServeError::Overloaded) => shed += 1,
                Err(e) => prop_assert!(false, "unexpected failure: {e}"),
            }
        }
        // Exactly one shed per model (the fourth submission evicts within
        // its own model), everything else served.
        prop_assert_eq!(shed, models.len() as u64);
        prop_assert_eq!(served, 3 * models.len() as u64);
        let stats = engine.stats();
        prop_assert_eq!(stats.shed, shed);
        prop_assert_eq!(stats.completed, served + 1); // + the parked request
        assert_class_ledger(&stats);
    }
}

#[test]
fn served_order_is_class_then_deadline_then_arrival() {
    let gate = Gate::closed();
    let gated = GatedRecommender::new(
        HittingTimeRecommender::new(&chain_dataset(), GraphRecConfig::default()),
        Arc::clone(&gate),
    );
    let served_log = Arc::clone(&gated.served);
    let engine = Engine::builder()
        .model("gated", Arc::new(gated) as SharedRecommender)
        .workers(1)
        .queue_capacity(8)
        .scheduling(SchedPolicy::Qos)
        .build();
    let parked = engine
        .submit(RecommendRequest::new("gated", 20, 3))
        .unwrap();
    gate.await_arrivals(1);
    assert_eq!(engine.queue_depth(), 0);

    // Scrambled submission order; the EDF schedule is none of FIFO, LIFO
    // or deadline-only order.
    let near = Instant::now() + Duration::from_secs(1800);
    let far = Instant::now() + Duration::from_secs(3600);
    let reqs = [
        RecommendRequest::new("gated", 13, 3)
            .with_priority(Priority::Batch)
            .deadline_at(near),
        RecommendRequest::new("gated", 11, 3).deadline_at(far),
        RecommendRequest::new("gated", 12, 3),
        RecommendRequest::new("gated", 10, 3).deadline_at(near),
    ];
    let pending: Vec<_> = reqs
        .iter()
        .map(|r| engine.submit(r.clone()).unwrap())
        .collect();
    assert_eq!(engine.queue_depth(), 4);
    // The health surface sees the same backlog, by class.
    assert_eq!(engine.queue_depth_by_class(), [3, 1, 0]);

    gate.open();
    assert!(parked.wait().is_ok());
    for p in pending {
        assert!(p.wait().is_ok(), "generous deadlines: everything serves");
    }
    // Interactive strictly before Batch; EDF within Interactive, with the
    // deadline-free request last; the near-deadline Batch request cannot
    // jump the class boundary.
    assert_eq!(*served_log.lock().unwrap(), vec![20, 10, 11, 12, 13]);
    assert_class_ledger(&engine.stats());
}

#[test]
fn fifo_policy_serves_in_arrival_order_despite_priorities() {
    let gate = Gate::closed();
    let gated = GatedRecommender::new(
        HittingTimeRecommender::new(&chain_dataset(), GraphRecConfig::default()),
        Arc::clone(&gate),
    );
    let served_log = Arc::clone(&gated.served);
    let engine = Engine::builder()
        .model("gated", Arc::new(gated) as SharedRecommender)
        .workers(1)
        .queue_capacity(8)
        .scheduling(SchedPolicy::Fifo)
        .build();
    let parked = engine
        .submit(RecommendRequest::new("gated", 20, 3))
        .unwrap();
    gate.await_arrivals(1);

    let near = Instant::now() + Duration::from_secs(1800);
    let pending: Vec<_> = [
        RecommendRequest::new("gated", 13, 3).with_priority(Priority::Background),
        RecommendRequest::new("gated", 11, 3).deadline_at(near),
        RecommendRequest::new("gated", 12, 3).with_priority(Priority::Batch),
    ]
    .iter()
    .map(|r| engine.submit(r.clone()).unwrap())
    .collect();
    gate.open();
    assert!(parked.wait().is_ok());
    for p in pending {
        assert!(p.wait().is_ok());
    }
    assert_eq!(*served_log.lock().unwrap(), vec![20, 13, 11, 12]);
}

#[test]
fn model_quota_refuses_one_models_burst_but_admits_others() {
    let d = chain_dataset();
    let gate = Gate::closed();
    let gated = GatedRecommender::new(
        HittingTimeRecommender::new(&d, GraphRecConfig::default()),
        Arc::clone(&gate),
    );
    let engine = Engine::builder()
        .model("gated", Arc::new(gated) as SharedRecommender)
        .model(
            "HT",
            Arc::new(HittingTimeRecommender::new(&d, GraphRecConfig::default()))
                as SharedRecommender,
        )
        .workers(1)
        .queue_capacity(8)
        .admission(AdmissionPolicy::Reject)
        .model_quota(1)
        .build();
    let parked = engine.submit(RecommendRequest::new("gated", 0, 3)).unwrap();
    gate.await_arrivals(1);

    let queued = engine.submit(RecommendRequest::new("gated", 1, 3)).unwrap();
    // The gated model is at its quota: its next request is refused even
    // though seven queue slots are free…
    let refused = engine.submit(RecommendRequest::new("gated", 2, 3));
    assert!(matches!(refused, Err(ServeError::Overloaded)));
    // …while another model's request is admitted untouched.
    let other = engine.submit(RecommendRequest::new("HT", 3, 3)).unwrap();
    assert_eq!(engine.queue_depth(), 2);
    let stats = engine.stats();
    assert_eq!(stats.rejected, 1);

    gate.open();
    for p in [parked, queued, other] {
        assert!(p.wait().is_ok(), "admitted requests all complete");
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 3);
    assert_class_ledger(&stats);
    // Rejections never enter the class ledger: only admitted work does.
    assert_eq!(stats.per_class[Priority::Interactive.index()].submitted, 3);
}

/// Wraps HT with a fixed pre-scoring delay and a call counter: a model
/// whose service time is long, known, and observable.
struct SleepyRecommender {
    inner: HittingTimeRecommender,
    delay: Duration,
    calls: AtomicUsize,
}

impl Recommender for SleepyRecommender {
    fn name(&self) -> &'static str {
        "sleepy"
    }

    fn score_into(&self, user: u32, ctx: &mut ScoringContext, out: &mut Vec<f64>) {
        self.inner.score_into(user, ctx, out);
    }

    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        self.calls.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        self.inner.recommend_into(user, k, opts, ctx, out);
    }

    fn rated_items(&self, user: u32) -> &[u32] {
        self.inner.rated_items(user)
    }

    fn n_items(&self) -> usize {
        self.inner.n_items()
    }
}

#[test]
fn unmeetable_deadline_is_slack_shed_without_running_the_model() {
    let sleepy = Arc::new(SleepyRecommender {
        inner: HittingTimeRecommender::new(&tiny_dataset(), GraphRecConfig::default()),
        delay: Duration::from_millis(200),
        calls: AtomicUsize::new(0),
    });
    let engine = Engine::builder()
        .model("sleepy", Arc::clone(&sleepy) as SharedRecommender)
        .workers(1)
        .scheduling(SchedPolicy::Qos)
        .build();

    // Train the EWMA: two deadline-free serves observe ~200ms each.
    for _ in 0..2 {
        let p = engine
            .submit(RecommendRequest::new("sleepy", 0, 1))
            .unwrap();
        assert!(p.wait().is_ok());
    }
    assert_eq!(sleepy.calls.load(Ordering::SeqCst), 2);

    // A 50ms deadline against a ~200ms estimate: provably unmeetable. The
    // request must be shed at dequeue — before the model runs — not left
    // to burn 200ms of worker time and expire inside the DP.
    let doomed = engine
        .submit(
            RecommendRequest::new("sleepy", 0, 1)
                .deadline_at(Instant::now() + Duration::from_millis(50)),
        )
        .unwrap();
    assert_eq!(doomed.wait(), Err(ServeError::DeadlineExceeded));
    assert_eq!(
        sleepy.calls.load(Ordering::SeqCst),
        2,
        "a slack-shed request must never reach the model"
    );
    let stats = engine.stats();
    assert_eq!(stats.shed_unmeetable, 1);
    assert_eq!(stats.shed, 1, "slack sheds are sheds in the global ledger");
    let interactive = stats.per_class[Priority::Interactive.index()];
    assert_eq!(interactive.shed, 1);
    assert_eq!(interactive.served, 2);
    assert_class_ledger(&stats);
    // The served latencies surfaced as percentiles (~200ms plus queueing:
    // between one bucket bound below and a couple above).
    let p50 = interactive.latency_p50().expect("two serves recorded");
    assert!(p50 > 0.1 && p50 < 2.0, "implausible p50 {p50}");
    assert!(interactive.latency_p99().unwrap() >= p50);

    // A meetable deadline on the same engine still serves: the estimate
    // informs shedding, it does not refuse deadlined work wholesale.
    let fine = engine
        .submit(
            RecommendRequest::new("sleepy", 0, 1)
                .deadline_at(Instant::now() + Duration::from_secs(10)),
        )
        .unwrap();
    assert!(fine.wait().is_ok());
    assert_eq!(sleepy.calls.load(Ordering::SeqCst), 3);
    assert_class_ledger(&engine.stats());
}
