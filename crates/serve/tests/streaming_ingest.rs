//! Streaming-ingest contracts, end to end through the engine:
//!
//! * **freshness** — appended ratings change rankings at the next
//!   published epoch without any rebuild, and the overlay answer is
//!   bit-identical to a model rebuilt on the union;
//! * **compaction redeploy** — [`Engine::compact_and_deploy`] folds the
//!   delta into a fresh base behind the hot-swap path; rankings are
//!   preserved across the swap and the residual delta holds only the
//!   appends that raced the rebuild;
//! * **no torn epochs under load** — with appenders, a compactor and
//!   query threads all running, every request completes, every response
//!   names its epoch, and every claimed `(epoch, base_version)` pair is
//!   one the store actually published.

use longtail_core::{
    DpStopping, GraphRecConfig, HittingTimeRecommender, RecommendOptions, Recommender,
    ScoringContext,
};
use longtail_data::{Dataset, Rating};
use longtail_serve::{
    DeltaConfig, DeltaRating, DeltaStore, Engine, RecommendRequest, SharedRecommender,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const N_USERS: usize = 8;
const N_ITEMS: usize = 12;

/// Deterministic base corpus: every user rates a spread of items so all
/// queries have candidates.
fn corpus() -> Dataset {
    let mut ratings = Vec::new();
    for u in 0..N_USERS as u32 {
        for j in 0..5u32 {
            let item = (u * 3 + j * 2) % N_ITEMS as u32;
            ratings.push(Rating {
                user: u,
                item,
                value: 1.0 + ((u + j) % 5) as f64,
            });
        }
    }
    Dataset::from_ratings(N_USERS, N_ITEMS, &ratings)
}

fn ht(d: &Dataset) -> SharedRecommender {
    Arc::new(HittingTimeRecommender::new(d, GraphRecConfig::default()))
}

fn items_of(r: &longtail_serve::RecommendResponse) -> Vec<u32> {
    r.items.iter().map(|s| s.item).collect()
}

#[test]
fn appends_change_rankings_at_published_epochs() {
    let base = corpus();
    let store = Arc::new(DeltaStore::new(
        base.clone(),
        DeltaConfig {
            publish_every: 4,
            ..DeltaConfig::default()
        },
    ));
    let engine = Engine::builder()
        .model("HT", ht(&base))
        .ingest("HT", store.clone())
        .workers(2)
        .build();

    let req = RecommendRequest::new("HT", 0, 4).with_stopping(DpStopping::Fixed);
    let before = engine.recommend(&req).unwrap();
    assert_eq!(before.epoch, Some(0), "pristine store serves epoch 0");
    assert_eq!(before.version, 1);

    // Four appends hit `publish_every` and become visible atomically.
    let appends = [
        DeltaRating {
            user: 0,
            item: 11,
            value: 5.0,
            timestamp: 1.0,
        },
        DeltaRating {
            user: 1,
            item: 11,
            value: 5.0,
            timestamp: 2.0,
        },
        DeltaRating {
            user: 2,
            item: 11,
            value: 5.0,
            timestamp: 3.0,
        },
        DeltaRating {
            user: 3,
            item: 11,
            value: 4.0,
            timestamp: 4.0,
        },
    ];
    for r in &appends {
        store.append(*r);
    }
    assert_eq!(store.epoch(), 1, "publish_every=4 published one epoch");

    let after = engine.recommend(&req).unwrap();
    assert_eq!(after.epoch, Some(1), "post-publish queries see the epoch");
    assert_ne!(
        items_of(&before),
        items_of(&after),
        "a 5-star co-rated item must move user 0's list"
    );

    // The overlay answer is exactly the rebuilt-on-union answer.
    let mut union_ratings: Vec<Rating> = base.to_ratings();
    union_ratings.extend(appends.iter().map(|d| Rating {
        user: d.user,
        item: d.item,
        value: d.value,
    }));
    let rebuilt = HittingTimeRecommender::new(
        &Dataset::from_ratings(N_USERS, N_ITEMS, &union_ratings),
        GraphRecConfig::default(),
    );
    let mut ctx = ScoringContext::new();
    let mut want = Vec::new();
    rebuilt.recommend_into(
        0,
        4,
        &RecommendOptions::with_stopping(DpStopping::Fixed),
        &mut ctx,
        &mut want,
    );
    assert_eq!(after.items, want, "overlay ≡ rebuild on the union");
}

#[test]
fn compaction_preserves_rankings_and_bumps_the_version() {
    let base = corpus();
    let store = Arc::new(DeltaStore::new(
        base.clone(),
        DeltaConfig {
            publish_every: 2,
            ..DeltaConfig::default()
        },
    ));
    let engine = Engine::builder()
        .model("HT", ht(&base))
        .ingest("HT", store.clone())
        .workers(2)
        .build();

    for (u, i) in [(0u32, 10u32), (1, 10), (4, 11), (5, 11)] {
        store.append(DeltaRating {
            user: u,
            item: i,
            value: 5.0,
            timestamp: u as f64,
        });
    }
    let req = RecommendRequest::new("HT", 0, 5).with_stopping(DpStopping::Fixed);
    let before = engine.recommend(&req).unwrap();
    assert_eq!(before.version, 1);

    let report = engine.compact_and_deploy("HT", |union| ht(union)).unwrap();
    assert_eq!(report.version, 2);
    assert_eq!(report.folded, 4, "all four appends folded into the base");
    assert_eq!(report.remaining, 0, "no appends raced the rebuild");

    let after = engine.recommend(&req).unwrap();
    assert_eq!(
        after.version, 2,
        "post-compaction queries serve the new base"
    );
    assert_eq!(
        after.epoch,
        Some(report.epoch),
        "post-compaction queries serve the commit epoch"
    );
    assert_eq!(
        items_of(&before),
        items_of(&after),
        "compaction must not change what the user sees"
    );
    let stats = engine.stats();
    assert_eq!(stats.ingest.appends, 4);
    assert_eq!(stats.ingest.compactions, 1);
    assert_eq!(stats.ingest.delta_edges_live, 0);
}

/// The acceptance gate: appenders + a compaction loop + queriers, all
/// concurrent. Zero lost requests, and every response's `(epoch,
/// base_version)` claim appears in the store's epoch log — no query ever
/// observes a torn base/delta pair.
#[test]
fn concurrent_load_never_tears_an_epoch_or_loses_a_request() {
    let base = corpus();
    let store = Arc::new(DeltaStore::new(
        base.clone(),
        DeltaConfig {
            publish_every: 3,
            ..DeltaConfig::default()
        },
    ));
    let engine = Arc::new(
        Engine::builder()
            .model("HT", ht(&base))
            .ingest("HT", store.clone())
            .workers(4)
            .build(),
    );

    const QUERIERS: usize = 3;
    const QUERIES_EACH: usize = 60;
    const APPENDS: u32 = 90;
    const COMPACTIONS: usize = 4;

    let done_appending = Arc::new(AtomicBool::new(false));
    let observed = std::thread::scope(|s| {
        let appender = {
            let store = store.clone();
            let done = done_appending.clone();
            s.spawn(move || {
                for i in 0..APPENDS {
                    store.append(DeltaRating {
                        user: i % N_USERS as u32,
                        item: i % N_ITEMS as u32,
                        value: 1.0 + (i % 5) as f64,
                        timestamp: i as f64,
                    });
                }
                done.store(true, Ordering::Release);
            })
        };
        let compactor = {
            let engine = engine.clone();
            s.spawn(move || {
                let mut reports = Vec::new();
                for _ in 0..COMPACTIONS {
                    reports.push(engine.compact_and_deploy("HT", |union| ht(union)).unwrap());
                    std::thread::yield_now();
                }
                reports
            })
        };
        let queriers: Vec<_> = (0..QUERIERS)
            .map(|t| {
                let engine = engine.clone();
                s.spawn(move || {
                    let mut seen = Vec::new();
                    for q in 0..QUERIES_EACH {
                        let user = ((t * QUERIES_EACH + q) % N_USERS) as u32;
                        let r = engine
                            .recommend(&RecommendRequest::new("HT", user, 4))
                            .expect("no request may be lost during ingest + compaction");
                        let epoch = r.epoch.expect("ingest-attached model names its epoch");
                        seen.push((epoch, r.version));
                    }
                    seen
                })
            })
            .collect();

        appender.join().unwrap();
        let reports = compactor.join().unwrap();
        assert_eq!(reports.len(), COMPACTIONS);
        let mut seen = Vec::new();
        for q in queriers {
            seen.extend(q.join().unwrap());
        }
        seen
    });
    assert!(done_appending.load(Ordering::Acquire));

    // Every claimed (epoch, base_version) pair was actually published,
    // in that exact pairing — the no-torn-epoch witness.
    let log = store.epoch_log();
    for (epoch, version) in &observed {
        assert!(
            log.contains(&(*epoch, *version)),
            "response claims epoch {epoch} on version {version}, \
             but the store never published that pair: {log:?}"
        );
    }
    assert_eq!(observed.len(), QUERIERS * QUERIES_EACH);

    // Versions went 1 → 1 + COMPACTIONS, each commit with its own epoch,
    // and the log is strictly ordered in both coordinates.
    assert_eq!(store.base_version(), 1 + COMPACTIONS as u32);
    for w in log.windows(2) {
        assert!(w[0].0 < w[1].0, "epochs must be strictly increasing");
        assert!(w[0].1 <= w[1].1, "base versions never go backwards");
    }

    // The ledgers agree nothing was dropped and the ingest counters
    // reconcile with what the threads did.
    let stats = engine.stats();
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.ingest.appends, APPENDS as u64);
    assert_eq!(stats.ingest.compactions, COMPACTIONS as u64);
}
