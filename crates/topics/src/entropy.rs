//! User entropy: the information-theoretic feature behind Absorbing Cost.
//!
//! §4.2's insight: a rating from a taste-specific user carries more signal
//! than one from an omnivore, so the walk should pay more to pass through
//! high-entropy users. Two estimators are provided:
//!
//! * **item-based** (Eq. 10, → AC1): entropy of the user's rating-mass
//!   distribution over items. Cheap, but overestimates the breadth of a
//!   user who rates many items inside a single niche;
//! * **topic-based** (Eq. 11, → AC2): entropy of the user's latent topic
//!   mixture from the LDA model — the paper's fix for exactly that failure
//!   mode, and the best performer across its experiments.

use crate::lda::LdaModel;
use longtail_graph::CsrMatrix;

/// Item-based user entropy (Eq. 10):
/// `E(u) = -Σ_{i∈S_u} p(i|u) ln p(i|u)` with `p(i|u) = w(u,i) / Σ w(u,·)`.
///
/// Users with no ratings get entropy 0 (a walk can never enter them anyway).
pub fn item_based_entropy(user_items: &CsrMatrix) -> Vec<f64> {
    (0..user_items.rows())
        .map(|u| {
            let total = user_items.row_sum(u);
            if total <= 0.0 {
                return 0.0;
            }
            let (_, weights) = user_items.row(u);
            weights
                .iter()
                .filter(|&&w| w > 0.0)
                .map(|&w| {
                    let p = w / total;
                    -p * p.ln()
                })
                .sum()
        })
        .collect()
}

/// Topic-based user entropy (Eq. 11):
/// `E(u) = -Σ_z p(z|θ_u) ln p(z|θ_u)` over the trained LDA mixture.
pub fn topic_based_entropy(model: &LdaModel) -> Vec<f64> {
    (0..model.n_users() as u32)
        .map(|u| longtail_linalg_entropy(model.theta(u)))
        .collect()
}

/// Shannon entropy of a probability vector (natural log). Kept local so this
/// crate does not depend on `longtail-linalg` for one function.
fn longtail_linalg_entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&v| v > 0.0).map(|&v| -v * v.ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::{LdaConfig, LdaModel};

    #[test]
    fn uniform_rater_has_max_entropy() {
        // User 0 spreads mass evenly over 4 items, user 1 concentrates.
        let m = CsrMatrix::from_triplets(
            2,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 0, 10.0),
                (1, 1, 1.0),
            ],
        );
        let e = item_based_entropy(&m);
        assert!((e[0] - 4.0f64.ln()).abs() < 1e-12);
        assert!(e[1] < e[0]);
    }

    #[test]
    fn single_item_user_has_zero_entropy() {
        let m = CsrMatrix::from_triplets(1, 3, &[(0, 1, 5.0)]);
        assert_eq!(item_based_entropy(&m), vec![0.0]);
    }

    #[test]
    fn unrated_user_has_zero_entropy() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 3.0)]);
        let e = item_based_entropy(&m);
        assert_eq!(e[1], 0.0);
    }

    #[test]
    fn more_items_means_more_entropy_at_equal_mass() {
        let m = CsrMatrix::from_triplets(
            2,
            6,
            &[
                (0, 0, 2.0),
                (0, 1, 2.0),
                (1, 0, 1.0),
                (1, 1, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
            ],
        );
        let e = item_based_entropy(&m);
        assert!(e[1] > e[0]);
    }

    #[test]
    fn topic_entropy_separates_specific_from_general_users() {
        // Users 0-1 rate only cluster A items; user 2 rates both clusters.
        let mut triplets = Vec::new();
        for u in 0..2u32 {
            for i in 0..4u32 {
                triplets.push((u, i, 5.0));
            }
        }
        for i in 0..8u32 {
            triplets.push((2, i, 5.0));
        }
        // A second pure cluster-B pair so the model can find both topics.
        for u in 3..5u32 {
            for i in 4..8u32 {
                triplets.push((u, i, 5.0));
            }
        }
        let counts = CsrMatrix::from_triplets(5, 8, &triplets);
        let config = LdaConfig {
            iterations: 80,
            ..LdaConfig::with_topics(2)
        };
        let model = LdaModel::train(&counts, &config);
        let e = topic_based_entropy(&model);
        // The omnivorous user 2 must be the most entropic.
        assert!(e[2] > e[0], "omnivore {} vs specialist {}", e[2], e[0]);
        assert!(e[2] > e[3], "omnivore {} vs specialist {}", e[2], e[3]);
    }

    #[test]
    fn topic_entropy_bounded_by_ln_k() {
        let counts = CsrMatrix::from_triplets(2, 3, &[(0, 0, 3.0), (1, 2, 4.0)]);
        let config = LdaConfig {
            iterations: 20,
            ..LdaConfig::with_topics(4)
        };
        let model = LdaModel::train(&counts, &config);
        for &e in &topic_based_entropy(&model) {
            assert!(e >= 0.0 && e <= 4.0f64.ln() + 1e-12);
        }
    }
}
