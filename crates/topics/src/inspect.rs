//! Topic inspection helpers (Table 1 of the paper).
//!
//! Table 1 demonstrates that LDA over raw rating counts recovers
//! genre-coherent topics (Children's/Animation vs Action) by listing the
//! five highest-probability movies per topic. These helpers regenerate that
//! view for any trained model.

use crate::lda::LdaModel;

/// The `top_n` items of topic `z` by probability, as `(item, p)` pairs in
/// descending order.
pub fn top_items(model: &LdaModel, z: usize, top_n: usize) -> Vec<(u32, f64)> {
    let phi = model.phi(z);
    let mut ranked: Vec<(u32, f64)> = phi
        .iter()
        .enumerate()
        .map(|(i, &p)| (i as u32, p))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    ranked.truncate(top_n);
    ranked
}

/// Top items for every topic: `result[z]` is [`top_items`]`(model, z, top_n)`.
pub fn top_items_per_topic(model: &LdaModel, top_n: usize) -> Vec<Vec<(u32, f64)>> {
    (0..model.n_topics())
        .map(|z| top_items(model, z, top_n))
        .collect()
}

/// Purity of topics against known item labels: for each topic, the fraction
/// of its `top_n` items sharing the topic's majority label, averaged over
/// topics. 1.0 means every topic is label-pure — the quantitative version of
/// "Table 1 topics look like genres".
///
/// # Panics
///
/// Panics if `labels.len() != model.n_items()`.
pub fn topic_label_purity(model: &LdaModel, labels: &[u32], top_n: usize) -> f64 {
    assert_eq!(labels.len(), model.n_items(), "one label per item required");
    let mut purities = Vec::with_capacity(model.n_topics());
    for z in 0..model.n_topics() {
        let top = top_items(model, z, top_n);
        if top.is_empty() {
            continue;
        }
        let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for &(item, _) in &top {
            *counts.entry(labels[item as usize]).or_insert(0) += 1;
        }
        let majority = counts.values().copied().max().unwrap_or(0);
        purities.push(majority as f64 / top.len() as f64);
    }
    if purities.is_empty() {
        0.0
    } else {
        purities.iter().sum::<f64>() / purities.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::{LdaConfig, LdaModel};
    use longtail_graph::CsrMatrix;

    fn clustered_model() -> LdaModel {
        let mut triplets = Vec::new();
        for u in 0..4u32 {
            for i in 0..5u32 {
                triplets.push((u, i, 5.0));
            }
        }
        for u in 4..8u32 {
            for i in 5..10u32 {
                triplets.push((u, i, 5.0));
            }
        }
        let counts = CsrMatrix::from_triplets(8, 10, &triplets);
        let config = LdaConfig {
            iterations: 80,
            ..LdaConfig::with_topics(2)
        };
        LdaModel::train(&counts, &config)
    }

    #[test]
    fn top_items_sorted_descending() {
        let m = clustered_model();
        let top = top_items(&m, 0, 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn top_items_per_topic_covers_all_topics() {
        let m = clustered_model();
        let all = top_items_per_topic(&m, 3);
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|t| t.len() == 3));
    }

    #[test]
    fn clustered_data_yields_pure_topics() {
        let m = clustered_model();
        // Items 0-4 are genre 0, items 5-9 genre 1.
        let labels: Vec<u32> = (0..10).map(|i| if i < 5 { 0 } else { 1 }).collect();
        let purity = topic_label_purity(&m, &labels, 5);
        assert!(purity > 0.9, "purity = {purity}");
    }

    #[test]
    fn truncation_respects_request() {
        let m = clustered_model();
        assert_eq!(top_items(&m, 1, 2).len(), 2);
        assert_eq!(top_items(&m, 1, 100).len(), 10);
    }
}
