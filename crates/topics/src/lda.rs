//! LDA over user-item rating counts, trained by collapsed Gibbs sampling.
//!
//! §4.2.3 of the paper learns users' latent tastes from nothing but the
//! rating matrix: each user is a "document" in which rated item `i` occurs
//! `w(u, i)` times (the rating value acts as a frequency count). Topics then
//! align with genres — Table 1 shows a Children's/Animation topic and an
//! Action topic recovered this way. The trained model serves two purposes:
//!
//! * the **topic-based user entropy** of Eq. 11, which drives the AC2
//!   recommender;
//! * the **LDA recommender baseline** of §5.1.1, scoring items by
//!   `Σ_z θ̂_u[z] · φ̂_z[i]`.
//!
//! The sampler is the standard collapsed Gibbs update of Eq. 12 (Griffiths &
//! Steyvers 2004), with the count arrays `N1..N4` of Algorithm 2.

use longtail_graph::CsrMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Hyper-parameters of the Gibbs-sampled LDA model.
#[derive(Debug, Clone, Copy)]
pub struct LdaConfig {
    /// Number of latent topics `K`.
    pub n_topics: usize,
    /// Dirichlet prior on per-user topic distributions. The paper's default
    /// is `50 / K`.
    pub alpha: f64,
    /// Dirichlet prior on per-topic item distributions. The paper's default
    /// is `0.1`.
    pub beta: f64,
    /// Number of full Gibbs sweeps over all tokens.
    pub iterations: usize,
    /// RNG seed (the sampler is deterministic given the seed).
    pub seed: u64,
}

impl LdaConfig {
    /// The paper's defaults for `K` topics: `α = 50/K`, `β = 0.1`.
    pub fn with_topics(n_topics: usize) -> Self {
        assert!(n_topics > 0, "need at least one topic");
        Self {
            n_topics,
            alpha: 50.0 / n_topics as f64,
            beta: 0.1,
            iterations: 100,
            seed: 0x10da_10da,
        }
    }
}

/// A trained LDA model: smoothed posterior estimates of the per-user topic
/// mixtures `θ` (Eq. 14) and per-topic item distributions `φ` (Eq. 13).
#[derive(Debug, Clone)]
pub struct LdaModel {
    n_topics: usize,
    n_users: usize,
    n_items: usize,
    /// Row-major `n_users x n_topics`, rows sum to 1.
    theta: Vec<f64>,
    /// Row-major `n_topics x n_items`, rows sum to 1.
    phi: Vec<f64>,
    /// Per-sweep corpus log-likelihood (up to a constant), for convergence
    /// inspection.
    log_likelihood: Vec<f64>,
}

impl LdaModel {
    /// Train on a user→item count matrix (ratings act as integer counts;
    /// fractional weights are rounded half-up, zero-weight entries emit no
    /// tokens).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no positive entries.
    pub fn train(counts: &CsrMatrix, config: &LdaConfig) -> Self {
        let n_users = counts.rows();
        let n_items = counts.cols();
        let k = config.n_topics;
        assert!(k > 0, "need at least one topic");

        // Expand the sparse counts into a token stream. `doc_ptr` delimits
        // each user's tokens, exactly like CSR row pointers.
        let mut token_item: Vec<u32> = Vec::new();
        let mut doc_ptr: Vec<usize> = Vec::with_capacity(n_users + 1);
        doc_ptr.push(0);
        for u in 0..n_users {
            for (i, w) in counts.iter_row(u) {
                let reps = (w + 0.5).floor() as usize;
                token_item.extend(std::iter::repeat_n(i, reps));
            }
            doc_ptr.push(token_item.len());
        }
        let n_tokens = token_item.len();
        assert!(n_tokens > 0, "count matrix has no positive entries");

        let mut rng = StdRng::seed_from_u64(config.seed);
        let alpha = config.alpha;
        let beta = config.beta;
        let beta_sum = beta * n_items as f64;

        // Count arrays (Algorithm 2's N1..N4): topic-item, user-topic and
        // topic totals. Per-user totals are implicit in doc_ptr.
        let mut n_topic_item = vec![0u32; k * n_items];
        let mut n_user_topic = vec![0u32; n_users * k];
        let mut n_topic = vec![0u32; k];
        let mut token_topic: Vec<u16> = Vec::with_capacity(n_tokens);

        // Random initialization (Algorithm 2, step 2).
        for (t, &item) in token_item.iter().enumerate() {
            let u = user_of_token(&doc_ptr, t);
            let z = rng.random_range(0..k);
            token_topic.push(z as u16);
            n_topic_item[z * n_items + item as usize] += 1;
            n_user_topic[u * k + z] += 1;
            n_topic[z] += 1;
        }

        let mut weights = vec![0.0f64; k];
        let mut log_likelihood = Vec::with_capacity(config.iterations);
        for _sweep in 0..config.iterations {
            let mut token = 0usize;
            for u in 0..n_users {
                let span = doc_ptr[u]..doc_ptr[u + 1];
                for t in span {
                    debug_assert_eq!(t, token);
                    let item = token_item[t] as usize;
                    let old = token_topic[t] as usize;
                    // Remove the current assignment from the counts.
                    n_topic_item[old * n_items + item] -= 1;
                    n_user_topic[u * k + old] -= 1;
                    n_topic[old] -= 1;

                    // Eq. 12: p(z) ∝ (n_zi + β)/(n_z + NI·β) · (n_uz + α).
                    // The per-user denominator is constant across z and
                    // cancels in the draw.
                    let mut total = 0.0;
                    for z in 0..k {
                        let w = (n_topic_item[z * n_items + item] as f64 + beta)
                            / (n_topic[z] as f64 + beta_sum)
                            * (n_user_topic[u * k + z] as f64 + alpha);
                        weights[z] = w;
                        total += w;
                    }
                    let mut draw = rng.random_range(0.0..total);
                    let mut new = k - 1;
                    for (z, &w) in weights.iter().enumerate() {
                        draw -= w;
                        if draw <= 0.0 {
                            new = z;
                            break;
                        }
                    }

                    token_topic[t] = new as u16;
                    n_topic_item[new * n_items + item] += 1;
                    n_user_topic[u * k + new] += 1;
                    n_topic[new] += 1;
                    token += 1;
                }
            }
            log_likelihood.push(corpus_log_likelihood(
                &doc_ptr,
                &token_item,
                &n_topic_item,
                &n_user_topic,
                &n_topic,
                n_items,
                k,
                alpha,
                beta,
            ));
        }

        // Posterior means: Eq. 13 for φ, Eq. 14 for θ.
        let mut phi = vec![0.0f64; k * n_items];
        for z in 0..k {
            let denom = n_topic[z] as f64 + beta_sum;
            for i in 0..n_items {
                phi[z * n_items + i] = (n_topic_item[z * n_items + i] as f64 + beta) / denom;
            }
        }
        let mut theta = vec![0.0f64; n_users * k];
        let alpha_sum = alpha * k as f64;
        for u in 0..n_users {
            let doc_len = (doc_ptr[u + 1] - doc_ptr[u]) as f64;
            let denom = doc_len + alpha_sum;
            for z in 0..k {
                theta[u * k + z] = (n_user_topic[u * k + z] as f64 + alpha) / denom;
            }
        }

        Self {
            n_topics: k,
            n_users,
            n_items,
            theta,
            phi,
            log_likelihood,
        }
    }

    /// Reassemble a model from its persisted posterior means — the load
    /// path of the model-lifecycle snapshot format. `theta` is the
    /// `n_users x n_topics` row-major user-topic matrix, `phi` the
    /// `n_topics x n_items` row-major topic-item matrix, and
    /// `log_likelihood` the per-sweep convergence trace (may be empty).
    ///
    /// # Panics
    ///
    /// Panics if the matrix lengths do not match the stated dimensions —
    /// fallible loaders must validate lengths before calling this.
    pub fn from_parts(
        n_topics: usize,
        n_users: usize,
        n_items: usize,
        theta: Vec<f64>,
        phi: Vec<f64>,
        log_likelihood: Vec<f64>,
    ) -> Self {
        assert_eq!(theta.len(), n_users * n_topics, "theta length mismatch");
        assert_eq!(phi.len(), n_topics * n_items, "phi length mismatch");
        Self {
            n_topics,
            n_users,
            n_items,
            theta,
            phi,
            log_likelihood,
        }
    }

    /// Number of topics `K`.
    #[inline]
    pub fn n_topics(&self) -> usize {
        self.n_topics
    }

    /// Number of users (documents).
    #[inline]
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items (vocabulary size).
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Topic mixture `θ̂_u` of user `u` (length `K`, sums to 1).
    #[inline]
    pub fn theta(&self, u: u32) -> &[f64] {
        let k = self.n_topics;
        &self.theta[u as usize * k..(u as usize + 1) * k]
    }

    /// Item distribution `φ̂_z` of topic `z` (length `n_items`, sums to 1).
    #[inline]
    pub fn phi(&self, z: usize) -> &[f64] {
        &self.phi[z * self.n_items..(z + 1) * self.n_items]
    }

    /// The whole `θ̂` matrix as one flat `n_users x n_topics` row-major
    /// slice — the save path of the snapshot format.
    #[inline]
    pub fn theta_flat(&self) -> &[f64] {
        &self.theta
    }

    /// The whole `φ̂` matrix as one flat `n_topics x n_items` row-major
    /// slice — the save path of the snapshot format.
    #[inline]
    pub fn phi_flat(&self) -> &[f64] {
        &self.phi
    }

    /// Predictive score `p(i|u) = Σ_z θ̂_u[z] · φ̂_z[i]` — the LDA
    /// recommender's ranking function.
    pub fn score(&self, u: u32, i: u32) -> f64 {
        let theta = self.theta(u);
        (0..self.n_topics)
            .map(|z| theta[z] * self.phi[z * self.n_items + i as usize])
            .sum()
    }

    /// Predictive scores of every item for user `u`.
    pub fn score_all(&self, u: u32) -> Vec<f64> {
        let mut scores = Vec::new();
        self.score_all_into(u, &mut scores);
        scores
    }

    /// [`LdaModel::score_all`] into a caller-owned buffer (cleared and
    /// resized first), for allocation-free scoring loops.
    pub fn score_all_into(&self, u: u32, out: &mut Vec<f64>) {
        let theta = self.theta(u);
        out.clear();
        out.resize(self.n_items, 0.0);
        for (z, &t) in theta.iter().enumerate() {
            if t == 0.0 {
                continue;
            }
            let row = self.phi(z);
            for (s, &p) in out.iter_mut().zip(row.iter()) {
                *s += t * p;
            }
        }
    }

    /// Corpus log-likelihood trace, one entry per Gibbs sweep.
    #[inline]
    pub fn log_likelihood_trace(&self) -> &[f64] {
        &self.log_likelihood
    }
}

/// Binary search the document (user) owning token `t`.
fn user_of_token(doc_ptr: &[usize], t: usize) -> usize {
    match doc_ptr.binary_search(&t) {
        Ok(mut idx) => {
            // `t` is the first token of a document; skip empty docs that
            // share the same pointer.
            while doc_ptr[idx + 1] == t {
                idx += 1;
            }
            idx
        }
        Err(idx) => idx - 1,
    }
}

/// Token-level log-likelihood `Σ_t ln p(item_t | u_t)` under the current
/// count state, used to monitor sweep-over-sweep convergence.
#[allow(clippy::too_many_arguments)]
fn corpus_log_likelihood(
    doc_ptr: &[usize],
    token_item: &[u32],
    n_topic_item: &[u32],
    n_user_topic: &[u32],
    n_topic: &[u32],
    n_items: usize,
    k: usize,
    alpha: f64,
    beta: f64,
) -> f64 {
    let beta_sum = beta * n_items as f64;
    let alpha_sum = alpha * k as f64;
    let n_users = doc_ptr.len() - 1;
    let mut ll = 0.0;
    for u in 0..n_users {
        let doc_len = (doc_ptr[u + 1] - doc_ptr[u]) as f64;
        let theta_denom = doc_len + alpha_sum;
        for &token in &token_item[doc_ptr[u]..doc_ptr[u + 1]] {
            let item = token as usize;
            let mut p = 0.0;
            for z in 0..k {
                let phi = (n_topic_item[z * n_items + item] as f64 + beta)
                    / (n_topic[z] as f64 + beta_sum);
                let theta = (n_user_topic[u * k + z] as f64 + alpha) / theta_denom;
                p += phi * theta;
            }
            ll += p.max(1e-300).ln();
        }
    }
    ll
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two sharply separated taste groups: users 0-2 rate items 0-3, users
    /// 3-5 rate items 4-7.
    fn two_cluster_counts() -> CsrMatrix {
        let mut triplets = Vec::new();
        for u in 0..3u32 {
            for i in 0..4u32 {
                triplets.push((u, i, 5.0));
            }
        }
        for u in 3..6u32 {
            for i in 4..8u32 {
                triplets.push((u, i, 5.0));
            }
        }
        CsrMatrix::from_triplets(6, 8, &triplets)
    }

    fn trained() -> LdaModel {
        let config = LdaConfig {
            iterations: 60,
            ..LdaConfig::with_topics(2)
        };
        LdaModel::train(&two_cluster_counts(), &config)
    }

    #[test]
    fn theta_rows_are_distributions() {
        let m = trained();
        for u in 0..m.n_users() as u32 {
            let theta = m.theta(u);
            let sum: f64 = theta.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "user {u} theta sums to {sum}");
            assert!(theta.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn phi_rows_are_distributions() {
        let m = trained();
        for z in 0..m.n_topics() {
            let phi = m.phi(z);
            let sum: f64 = phi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "topic {z} phi sums to {sum}");
        }
    }

    #[test]
    fn recovers_cluster_structure() {
        let m = trained();
        // Users within a cluster share their dominant topic; across
        // clusters the dominant topics differ.
        let dom = |u: u32| {
            let t = m.theta(u);
            if t[0] > t[1] {
                0
            } else {
                1
            }
        };
        assert_eq!(dom(0), dom(1));
        assert_eq!(dom(1), dom(2));
        assert_eq!(dom(3), dom(4));
        assert_eq!(dom(4), dom(5));
        assert_ne!(dom(0), dom(3));
    }

    #[test]
    fn scores_respect_cluster_membership() {
        let m = trained();
        // User 0 (cluster A) must prefer an unobserved cluster-A item over
        // cluster-B items... all items are observed here, so compare owned
        // vs foreign items directly.
        assert!(m.score(0, 1) > m.score(0, 6));
        assert!(m.score(4, 6) > m.score(4, 1));
    }

    #[test]
    fn score_all_matches_score() {
        let m = trained();
        let all = m.score_all(2);
        for i in 0..m.n_items() as u32 {
            assert!((all[i as usize] - m.score(2, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn log_likelihood_improves_from_random_init() {
        let m = trained();
        let trace = m.log_likelihood_trace();
        assert_eq!(trace.len(), 60);
        let early = trace[0];
        let late = *trace.last().unwrap();
        assert!(late > early, "LL did not improve: {early} -> {late}");
    }

    #[test]
    fn deterministic_given_seed() {
        let counts = two_cluster_counts();
        let config = LdaConfig {
            iterations: 10,
            ..LdaConfig::with_topics(2)
        };
        let a = LdaModel::train(&counts, &config);
        let b = LdaModel::train(&counts, &config);
        assert_eq!(a.theta, b.theta);
        assert_eq!(a.phi, b.phi);
    }

    #[test]
    fn fractional_weights_round() {
        // 0.4 rounds to zero tokens; 0.6 rounds to one.
        let counts = CsrMatrix::from_triplets(1, 2, &[(0, 0, 0.6), (0, 1, 2.4)]);
        let config = LdaConfig {
            iterations: 5,
            ..LdaConfig::with_topics(1)
        };
        let m = LdaModel::train(&counts, &config);
        // Item 1 has twice the token mass of item 0 (2 vs 1).
        assert!(m.phi(0)[1] > m.phi(0)[0]);
    }

    #[test]
    #[should_panic(expected = "no positive entries")]
    fn empty_corpus_rejected() {
        let counts = CsrMatrix::zeros(2, 2);
        LdaModel::train(&counts, &LdaConfig::with_topics(2));
    }

    #[test]
    fn user_of_token_handles_empty_docs() {
        // doc 0: tokens [0,1); doc 1: empty; doc 2: tokens [1,3).
        let doc_ptr = vec![0, 1, 1, 3];
        assert_eq!(user_of_token(&doc_ptr, 0), 0);
        assert_eq!(user_of_token(&doc_ptr, 1), 2);
        assert_eq!(user_of_token(&doc_ptr, 2), 2);
    }
}
