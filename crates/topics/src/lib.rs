//! Latent topic modelling for long-tail recommendation.
//!
//! Implements §4.2.3 of *Challenging the Long Tail Recommendation*: an LDA
//! model over user-item rating counts trained with collapsed Gibbs sampling
//! (Algorithm 2), the item-based and topic-based user-entropy features
//! (Eq. 10–11) that drive the Absorbing Cost recommenders, and the topic
//! inspection utilities behind Table 1.

#![warn(missing_docs)]

pub mod entropy;
pub mod inspect;
pub mod lda;

pub use entropy::{item_based_entropy, topic_based_entropy};
pub use inspect::{top_items, top_items_per_topic, topic_label_purity};
pub use lda::{LdaConfig, LdaModel};
