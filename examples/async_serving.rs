//! Async serving tour: non-blocking submission, per-request deadlines and
//! explicit backpressure over the engine's worker pool.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example async_serving
//! ```

use longtail::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // 1. Data + engine: one HT model behind a small worker pool with a
    //    bounded admission queue. `ShedOldest` keeps `submit` non-blocking
    //    under overload: fresh traffic is admitted by dropping the stalest
    //    waiter instead of refusing the new request or blocking.
    let config = SyntheticConfig {
        n_users: 300,
        n_items: 240,
        ..SyntheticConfig::movielens_like()
    };
    let data = SyntheticData::generate(&config);
    let ht = Arc::new(HittingTimeRecommender::new(
        &data.dataset,
        GraphRecConfig {
            max_items: 120,
            iterations: 60,
        },
    ));
    let engine = Engine::builder()
        .model("HT", ht)
        .workers(2)
        .queue_capacity(16)
        .admission(AdmissionPolicy::ShedOldest)
        .build();
    println!(
        "engine up: {} workers, queue capacity 16, ShedOldest backpressure",
        engine.n_workers()
    );

    // 2. Non-blocking submission: enqueue now, do other work, claim later.
    //    The handle is a one-shot reply channel — poll it (`try_recv`),
    //    bound the wait (`wait_timeout`), or block (`wait`).
    let mut pending = engine
        .submit(RecommendRequest::new("HT", 7, 5))
        .expect("queue has room");
    println!(
        "submitted; caller is free (queue depth {})",
        engine.queue_depth()
    );
    let response = loop {
        match pending.wait_timeout(Duration::from_millis(50)) {
            Some(result) => break result.expect("registered model"),
            None => println!("  ...still pending, doing other work"),
        }
    };
    let items: Vec<u32> = response.items.iter().map(|s| s.item).collect();
    println!(
        "user 7 -> {items:?} (DP {}/{} iterations)",
        response.telemetry.iterations_run, response.telemetry.iterations_budget
    );

    // 3. Open-loop burst: fan out a whole batch of submissions before
    //    claiming anything — arrivals never wait on completions. This is
    //    exactly what `Engine::recommend_batch` does under the hood.
    let burst: Vec<_> = (0..48u32)
        .map(|u| engine.submit(RecommendRequest::new("HT", u % 300, 5)))
        .collect();
    let mut served = 0usize;
    let mut shed = 0usize;
    for handle in burst {
        match handle {
            Ok(p) => match p.wait() {
                Ok(_) => served += 1,
                Err(ServeError::Overloaded) => shed += 1,
                Err(e) => panic!("unexpected failure: {e}"),
            },
            Err(ServeError::Overloaded) => shed += 1,
            Err(e) => panic!("unexpected refusal: {e}"),
        }
    }
    println!("\nburst of 48: {served} served, {shed} shed by backpressure");

    // 4. Deadlines: an expired request is shed at dequeue — the DP never
    //    runs for it — while a generously-deadlined one serves normally.
    let expired = engine
        .submit(RecommendRequest::new("HT", 7, 5).deadline_at(Instant::now()))
        .expect("admission is separate from expiry")
        .wait();
    assert_eq!(expired, Err(ServeError::DeadlineExceeded));
    let in_time = engine
        .submit(RecommendRequest::new("HT", 7, 5).deadline_in(Duration::from_secs(5)))
        .expect("queue has room")
        .wait();
    assert!(in_time.is_ok());
    println!("expired deadline -> DeadlineExceeded; 5s budget -> served");

    // 5. The counters tie it all together: every admitted request lands in
    //    exactly one outcome bucket.
    let stats: EngineStats = engine.stats();
    println!(
        "\nengine stats: {} submitted = {} completed + {} shed + {} expired@dequeue + {} expired@dp + {} failed",
        stats.submitted,
        stats.completed,
        stats.shed,
        stats.expired_at_dequeue,
        stats.expired_in_dp,
        stats.failed,
    );
    assert_eq!(
        stats.submitted,
        stats.completed
            + stats.shed
            + stats.expired_at_dequeue
            + stats.expired_in_dp
            + stats.failed
    );
}
