//! Bookstore scenario: how far into the tail does each algorithm reach?
//!
//! Mirrors the paper's Douban-books evaluation at laptop scale: train the
//! graph algorithms and the baselines on a sparse book catalog, recommend a
//! top-10 to a sample of readers, and compare popularity, diversity and
//! on-taste similarity of the suggestions (Figure 6 / Table 2 / Table 3 in
//! miniature).
//!
//! ```text
//! cargo run --release --example bookstore_longtail
//! ```

use longtail::prelude::*;

fn main() {
    let config = SyntheticConfig {
        n_users: 600,
        n_items: 500,
        ..SyntheticConfig::douban_like()
    };
    let data = SyntheticData::generate(&config);
    let train = &data.dataset;
    let popularity = train.item_popularity();
    let ontology = Ontology::from_genres(&data.item_genres, 3, 42);
    println!(
        "bookstore: {} readers, {} books, {} ratings ({:.2}% dense)\n",
        train.n_users(),
        train.n_items(),
        train.n_ratings(),
        100.0 * train.density()
    );

    // The paper's graph methods and its strongest baselines.
    let at = AbsorbingTimeRecommender::new(train, GraphRecConfig::default());
    let ac1 = AbsorbingCostRecommender::item_entropy(train, AbsorbingCostConfig::default());
    let svd = PureSvdRecommender::train(train, 20);
    let dppr = PageRankRecommender::discounted(train);

    let users = sample_test_users(&train.user_activity(), 200, 3, 99);
    println!(
        "{:<8} {:>12} {:>10} {:>11}",
        "algo", "popularity", "diversity", "similarity"
    );
    for rec in [&at as &dyn Recommender, &ac1, &svd, &dppr] {
        let lists = RecommendationLists::compute(rec, &users, 10, 4);
        println!(
            "{:<8} {:>12.1} {:>10.3} {:>11.3}",
            rec.name(),
            mean_popularity(&lists, &popularity),
            diversity(&lists, train.n_items()),
            mean_similarity(&lists, train, &ontology),
        );
    }
    println!(
        "\nReading the table: the walk-based methods (AT, AC1) recommend books \
         with far fewer ratings than PureSVD at similar on-taste similarity, \
         and spread their suggestions over many more distinct titles."
    );
}
