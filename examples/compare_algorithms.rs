//! Mini Recall@N shoot-out across all seven algorithms (§5.2.1 at
//! laptop scale).
//!
//! Holds out 5-star long-tail favourites, then checks how often each
//! algorithm places the held-out favourite in its top N among random
//! distractors — the accuracy protocol behind Figure 5.
//!
//! ```text
//! cargo run --release --example compare_algorithms
//! ```

use longtail::prelude::*;

fn main() {
    let config = SyntheticConfig {
        n_users: 350,
        n_items: 260,
        ..SyntheticConfig::movielens_like()
    };
    let data = SyntheticData::generate(&config);
    let popularity = data.dataset.item_popularity();
    let tail = LongTailSplit::by_rating_share(&popularity, 0.2);
    let split = holdout_longtail_favorites(
        &data.dataset,
        &tail,
        &SplitConfig {
            n_test: 150,
            ..SplitConfig::default()
        },
    );
    println!(
        "held out {} five-star tail favourites; training on {} ratings\n",
        split.test_cases.len(),
        split.train.n_ratings()
    );

    let train = &split.train;
    let lda_model = LdaModel::train(train.user_items(), &LdaConfig::with_topics(config.n_genres));

    let ht = HittingTimeRecommender::new(train, GraphRecConfig::default());
    let at = AbsorbingTimeRecommender::new(train, GraphRecConfig::default());
    let ac1 = AbsorbingCostRecommender::item_entropy(train, AbsorbingCostConfig::default());
    let ac2 =
        AbsorbingCostRecommender::topic_entropy(train, &lda_model, AbsorbingCostConfig::default());
    let lda = LdaRecommender::from_model(train, lda_model.clone());
    let svd = PureSvdRecommender::train(train, 20);
    let dppr = PageRankRecommender::discounted(train);

    let recall_config = RecallConfig {
        n_distractors: 200,
        max_n: 50,
        ..RecallConfig::default()
    };
    println!("{:<8} {:>9} {:>9} {:>9}", "algo", "R@5", "R@20", "R@50");
    for rec in [&ac2 as &dyn Recommender, &ac1, &at, &ht, &dppr, &svd, &lda] {
        let curve = recall_at_n(rec, &data.dataset, &split, &recall_config);
        println!(
            "{:<8} {:>9.3} {:>9.3} {:>9.3}",
            rec.name(),
            curve.at(5),
            curve.at(20),
            curve.at(50)
        );
    }
    println!(
        "\nThis is a miniature of the paper's Figure 5 protocol; at this toy \
         scale the per-variant ordering is noisy. Run the full experiment with \
         `cargo run --release -p longtail-bench --bin fig5_recall` to compare \
         shapes against the paper."
    );
}
