//! Fault-tolerance tour: deterministic fault injection, circuit breakers,
//! retries and degraded-mode fallback to the popularity baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use longtail::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. Data + models: the paper's HT walk as the primary, the
    //    popularity head (the paper's strawman baseline) as the
    //    always-available fallback.
    let config = SyntheticConfig {
        n_users: 300,
        n_items: 240,
        ..SyntheticConfig::movielens_like()
    };
    let data = SyntheticData::generate(&config);
    let ht = Arc::new(HittingTimeRecommender::new(
        &data.dataset,
        GraphRecConfig {
            max_items: 120,
            iterations: 60,
        },
    ));
    let pop = Arc::new(PopularityRecommender::train(&data.dataset));

    // 2. Chaos: wrap HT in a deterministic fault plan — panic *bursts* of
    //    two consecutive calls (calls 0,1, 8,9, 16,17, …), so a single
    //    retry sometimes lands inside the burst and the fallback has to
    //    step in. Same schedule, same faults, every run.
    let faulty_ht = Arc::new(FaultyRecommender::new(
        ht.clone(),
        FaultPlan::new()
            .fault_every(8, 0, FaultKind::Panic)
            .fault_every(8, 1, FaultKind::Panic),
    ));
    // The default panic hook would print a backtrace for every injected
    // panic the engine catches; keep the tour output readable.
    std::panic::set_hook(Box::new(|_| {}));

    // 3. Protection: a tight breaker per model, one retry on a fresh
    //    context, and POP registered as HT's degraded-mode fallback.
    let engine = Engine::builder()
        .model("HT", faulty_ht)
        .model("POP", pop)
        .fallback("HT", "POP")
        .breakers(BreakerConfig {
            window: 8,
            failure_threshold: 4,
            cooldown: Duration::from_millis(50),
        })
        .default_retry(RetryPolicy::attempts(2))
        .workers(2)
        .build();

    // 4. Serve through the fault storm: every request is answered — some
    //    by HT after a retry, some by POP flagged degraded.
    let mut served = 0u32;
    let mut degraded = 0u32;
    for user in 0..40u32 {
        match engine
            .submit(RecommendRequest::new("HT", user % 20, 5))
            .and_then(|pending| pending.wait())
        {
            Ok(resp) => {
                served += 1;
                if resp.degraded {
                    degraded += 1;
                }
            }
            Err(err) => println!("  user {user}: refused typed ({err})"),
        }
    }
    println!("served {served}/40 requests, {degraded} degraded via POP fallback");

    // 5. Observability: the health snapshot an operator probe would export.
    let health = engine.health();
    for model in &health.models {
        println!(
            "model {:>3}: breakers {:?}, trips {}, fallback {:?}",
            model.name, model.breakers, model.breaker_trips, model.fallback
        );
    }
    let stats = health.stats;
    println!(
        "stats: completed {} (degraded {}), retries {}, panics caught {}, \
         requests lost to panics {}, breaker refusals {}, workers restarted {}",
        stats.completed,
        stats.degraded,
        stats.retries,
        stats.contexts_discarded,
        stats.panicked,
        stats.circuit_open,
        stats.workers_restarted
    );
    assert_eq!(served, 40, "with protection on, every request is answered");
    println!("availability under injected faults: 100%");
}
