//! Long-tail quality tour: the policy-driven re-rank stage, off vs on.
//!
//! A post-scoring [`RerankPolicy`] trades a bounded amount of raw relevance
//! for catalog health: MMR redundancy suppression, a popularity penalty
//! over item-degree percentiles, and a hard tail quota. This example
//! measures that trade on a synthetic long-tail catalog and then threads
//! the same policy through the serving engine per QoS class.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example longtail_quality
//! ```

use longtail::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A synthetic catalog with a built-in long tail, and the kind of
    //    recommender the paper argues against: a matrix-factorization
    //    baseline whose latent factors chase the short head. That head bias
    //    is exactly what the re-rank stage is for.
    let config = SyntheticConfig {
        n_users: 240,
        n_items: 180,
        ..SyntheticConfig::movielens_like()
    };
    let data = SyntheticData::generate(&config);
    let d = &data.dataset;
    let svd = PureSvdRecommender::train(d, 16);

    // 2. The re-rank substrate: item-degree percentiles and the bipartite
    //    shared-neighbor similarity the MMR term consults, built once from
    //    the training data.
    let index = RerankIndex::from_dataset(d);
    let policy = RerankPolicy::new()
        .mmr(0.3)
        .popularity_penalty(0.25)
        .tail_quota(3);
    println!(
        "policy: mmr λ={}, popularity penalty={}, tail quota={}/list (tail = bottom {:.0}% of item degree)",
        policy.mmr_lambda,
        policy.popularity_penalty,
        policy.tail_quota,
        policy.tail_cutoff * 100.0
    );

    // 3. Serve every user's top-10 twice through the fused batch path:
    //    once raw, once with the policy attached. The policy over-fetches a
    //    top-M pool and reorders it, so both runs pay one walk each.
    let users: Vec<u32> = (0..d.n_users() as u32).collect();
    let k = 10;
    let raw_opts = RecommendOptions::new();
    let on_opts = RecommendOptions::new().rerank(Reranker::new(&index, policy));
    let off = RecommendationLists::compute_with(&svd, &users, k, &raw_opts, 4);
    let on = RecommendationLists::compute_with(&svd, &users, k, &on_opts, 4);

    // A *disabled* policy must be a strict no-op: same items, same scores,
    // same order as no policy at all (the rerank_policy proptests pin this
    // across every recommender family).
    let disabled_opts =
        RecommendOptions::new().rerank(Reranker::new(&index, RerankPolicy::default()));
    let disabled = RecommendationLists::compute_with(&svd, &users, k, &disabled_opts, 4);
    assert_eq!(disabled.lists, off.lists, "disabled policy must be a no-op");
    println!("disabled policy: bit-identical to the raw path ✓");

    // 4. The quality lens: coverage, exposure concentration and novelty
    //    over the served lists.
    let pops = d.item_popularity();
    let metrics = |lists: &RecommendationLists| {
        (
            catalog_coverage(lists, d.n_items()),
            gini_concentration(&exposure_counts(lists, d.n_items())),
            novelty(lists, &pops, d.n_users()),
        )
    };
    let (cov_off, gini_off, nov_off) = metrics(&off);
    let (cov_on, gini_on, nov_on) = metrics(&on);
    println!("\n                 raw      re-ranked");
    println!("coverage       {cov_off:7.3}    {cov_on:7.3}");
    println!("gini           {gini_off:7.3}    {gini_on:7.3}   (lower = fairer exposure)");
    println!("novelty (bits) {nov_off:7.3}    {nov_on:7.3}");
    let tail_slots = |lists: &RecommendationLists| {
        lists
            .lists
            .iter()
            .flatten()
            .filter(|s| index.tail(s.item, policy.tail_cutoff))
            .count()
    };
    println!(
        "tail slots     {:7}    {:7}   (of {} filled)",
        tail_slots(&off),
        tail_slots(&on),
        on.n_recommendations()
    );

    // 5. The same policy through the serving engine, per QoS class: Batch
    //    list regeneration gets the quality pass, Interactive traffic stays
    //    on the raw low-latency path. Re-ranked responses carry per-item
    //    provenance.
    let shared: Arc<dyn Recommender + Send + Sync> =
        Arc::new(HittingTimeRecommender::new(d, GraphRecConfig::default()));
    let engine = Engine::builder()
        .model("HT", shared)
        .rerank_index("HT", Arc::new(RerankIndex::from_dataset(d)))
        .class_rerank(Priority::Batch, policy)
        .workers(2)
        .build();
    let user = 3u32;
    let interactive = engine
        .recommend(&RecommendRequest::new("HT", user, 5))
        .unwrap();
    let batch = engine
        .recommend(&RecommendRequest::new("HT", user, 5).with_priority(Priority::Batch))
        .unwrap();
    assert!(
        interactive.provenance.is_none(),
        "raw path carries no trace"
    );
    let trace = batch.provenance.as_ref().expect("re-ranked path is traced");
    println!("\nengine, user {user}: Interactive raw, Batch re-ranked with provenance:");
    for (s, p) in batch.items.iter().zip(trace) {
        println!(
            "  item {:3}  score {:7.4}  pop pct {:4.2}  tail {}  moved {:+}",
            s.item,
            s.score,
            p.popularity_percentile,
            if p.tail { "yes" } else { " no" },
            p.displacement
        );
    }
}
