//! Model lifecycle tour: per-shard training, binary snapshots, a restart
//! that reloads instead of retraining, and an atomic hot swap that
//! publishes a new version while traffic is in flight.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example model_lifecycle
//! ```

use longtail::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Corpus + shard plan. `shard_by_user` uses the same route
    //    signature as the serving `ShardRouter`, so shard s trains on
    //    exactly the users whose queries shard s will serve.
    const N_SHARDS: usize = 3;
    let config = SyntheticConfig {
        n_users: 240,
        n_items: 200,
        ..SyntheticConfig::movielens_like()
    };
    let data = SyntheticData::generate(&config);
    let router = ModuloRouter;
    let shards = data
        .dataset
        .shard_by_user(N_SHARDS, |u, n| router.route(u, n));
    println!(
        "corpus: {} users x {} items, {} ratings over {N_SHARDS} shards",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_ratings()
    );

    // 2. Train each shard's model independently and snapshot it to disk —
    //    the "training cluster" half of the lifecycle.
    let dir = std::env::temp_dir().join("longtail_model_lifecycle");
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    let mut paths = Vec::new();
    for (s, shard) in shards.iter().enumerate() {
        let model = HittingTimeRecommender::new(
            shard,
            GraphRecConfig {
                max_items: 120,
                iterations: 40,
            },
        );
        let path = dir.join(format!("ht_shard{s}.snap"));
        model.save_to_file(&path).expect("snapshot write");
        let bytes = std::fs::metadata(&path).expect("stat").len();
        println!(
            "shard {s}: trained on {} ratings, snapshot {bytes} B",
            shard.n_ratings()
        );
        paths.push(path);
    }

    // 3. "Serving host restart": build the engine by *loading* every shard
    //    from its snapshot — no retraining. Load is fallible and typed:
    //    corrupt or truncated snapshots are rejected, never panic.
    let loaded: Vec<_> = paths
        .iter()
        .map(|p| {
            let rec = HittingTimeRecommender::load_from_file(p).expect("snapshot read");
            (
                Arc::new(rec) as Arc<dyn Recommender + Send + Sync>,
                ModelProvenance::Snapshot(p.clone()),
            )
        })
        .collect();
    let engine = Engine::builder()
        .sharded_model_from("HT", Arc::new(ModuloRouter), loaded)
        .workers(2)
        .build();
    let r = engine
        .recommend(&RecommendRequest::new("HT", 7, 5))
        .expect("serve");
    println!(
        "restarted from snapshots: user 7 -> {:?} (model {}, shard {:?}, version {})",
        r.items.iter().map(|s| s.item).collect::<Vec<_>>(),
        r.model,
        r.shard,
        r.version
    );

    // 4. Hot swap: retrain shard 1 with a deeper walk and deploy it while
    //    the engine keeps serving. The deploy is atomic — requests pin the
    //    version they resolved, new requests route to the new one.
    let retrained = HittingTimeRecommender::new(
        &shards[1],
        GraphRecConfig {
            max_items: 120,
            iterations: 60,
        },
    );
    let retrained_path = dir.join("ht_shard1_v2.snap");
    retrained
        .save_to_file(&retrained_path)
        .expect("snapshot write");
    let v2 = HittingTimeRecommender::load_from_file(&retrained_path).expect("snapshot read");
    let version = engine
        .deploy_shard_from(
            "HT",
            1,
            Arc::new(v2),
            ModelProvenance::Snapshot(retrained_path.clone()),
        )
        .expect("deploy");
    println!("deployed shard 1 as HT@{version}");

    // User 7 routes to shard 1 (7 % 3 == 1) and now serves on version 2;
    // user 6 routes to shard 0, still on its version 1.
    let on_new = engine
        .recommend(&RecommendRequest::new("HT", 7, 5))
        .unwrap();
    let on_old = engine
        .recommend(&RecommendRequest::new("HT", 6, 5))
        .unwrap();
    println!(
        "post-swap: user 7 served by shard {:?} version {}, user 6 by shard {:?} version {}",
        on_new.shard, on_new.version, on_old.shard, on_old.version
    );
    assert_eq!(on_new.version, 2);
    assert_eq!(on_old.version, 1);

    // 5. Health reports the version chain: active version, provenance and
    //    the deploy history per shard (retired versions are dropped once
    //    their last in-flight pin releases).
    let health = engine.health();
    for m in &health.models {
        for (s, ((v, prov), history)) in m
            .versions
            .iter()
            .zip(&m.provenance)
            .zip(&m.deploy_history)
            .enumerate()
        {
            println!(
                "  {}@{v} shard {s}: {prov}, {} deploys, oldest retired: {}",
                m.name,
                history.len(),
                history.first().map(|r| r.retired).unwrap_or(false)
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("lifecycle complete: train -> snapshot -> reload -> deploy");
}
