//! The paper's Figure 2 worked example, end to end.
//!
//! Five users, six movies. U5 likes Action (rated "First Blood" and
//! "Highlander"); the niche Action movie "The Seventh Scroll" (M4) has a
//! single rating, while the war epic "Patton" (M1) is locally popular.
//! Classic CF suggests M1; hitting time suggests M4 (§3.3).
//!
//! ```text
//! cargo run --example movie_night
//! ```

use longtail::markov::AbsorbingWalk;
use longtail::prelude::*;
use longtail_graph::Adjacency;

const MOVIES: [&str; 6] = [
    "Patton (1970)",
    "First Blood (1982)",
    "Highlander (1986)",
    "The Seventh Scroll (1999)",
    "Gandhi (1982)",
    "Ben-Hur (1959)",
];

fn main() {
    // The rating matrix of Figure 2 (users U1..U5, movies M1..M6).
    let ratings: Vec<Rating> = [
        (0, 0, 5.0),
        (0, 1, 3.0),
        (0, 4, 3.0),
        (0, 5, 5.0),
        (1, 0, 5.0),
        (1, 1, 4.0),
        (1, 2, 5.0),
        (1, 4, 4.0),
        (1, 5, 5.0),
        (2, 0, 4.0),
        (2, 1, 5.0),
        (2, 2, 4.0),
        (3, 2, 5.0),
        (3, 3, 5.0),
        (4, 1, 4.0),
        (4, 2, 5.0),
    ]
    .into_iter()
    .map(|(user, item, value)| Rating { user, item, value })
    .collect();
    let dataset = Dataset::from_ratings(5, 6, &ratings);
    let graph = dataset.to_graph();

    // Exact hitting times from every movie to the query user U5 (= user 4):
    // the absorbing walk with S = {U5}.
    let adj = Adjacency::from_bipartite(&graph);
    let walk = AbsorbingWalk::new(&adj, &[graph.user_node(4)]);
    let times = walk.exact_times().expect("Figure 2 graph is connected");

    println!("hitting times to U5 (paper: M4=17.7 < M1=19.6 < M5=20.2 < M6=20.3):");
    let mut ranked: Vec<(u32, f64)> = (0..6u32)
        .filter(|&m| !dataset.has_rated(4, m))
        .map(|m| (m, times[graph.item_node(m)]))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (m, t) in &ranked {
        println!(
            "  H(U5|M{}) = {:5.2}  {}  ({} rating{})",
            m + 1,
            t,
            MOVIES[*m as usize],
            graph.item_popularity(*m),
            if graph.item_popularity(*m) == 1 {
                ""
            } else {
                "s"
            },
        );
    }

    // The same conclusion through the public recommender API.
    let rec = HittingTimeRecommender::new(
        &dataset,
        GraphRecConfig {
            max_items: 6000,
            iterations: 60,
        },
    );
    let top = rec.recommend(4, 1);
    println!(
        "\nHT recommends: {} — the niche Action movie, matching U5's taste",
        MOVIES[top[0].item as usize]
    );
    assert_eq!(top[0].item, 3, "the paper's example must reproduce");
}
