//! QoS scheduling tour: priority classes, earliest-deadline-first dequeue,
//! slack shedding and the per-class ledgers they are accounted in.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example qos_scheduling
//! ```

use longtail::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // 1. Two engines over the same HT model, one worker each — overload is
    //    the point. The only difference is the dequeue policy: plain FIFO
    //    vs the QoS scheduler (strict priority classes, EDF within a
    //    class, slack-based shedding).
    let config = SyntheticConfig {
        n_users: 300,
        n_items: 240,
        ..SyntheticConfig::movielens_like()
    };
    let data = SyntheticData::generate(&config);
    let ht: Arc<dyn Recommender + Send + Sync> = Arc::new(HittingTimeRecommender::new(
        &data.dataset,
        GraphRecConfig {
            max_items: 160,
            iterations: 120,
        },
    ));
    let build = |sched: SchedPolicy| {
        Engine::builder()
            .model("HT", Arc::clone(&ht))
            .workers(1)
            .queue_capacity(256)
            .scheduling(sched)
            .build()
    };
    let fifo = build(SchedPolicy::Fifo);
    let qos = build(SchedPolicy::Qos);

    // 2. Calibration: a closed-loop pass measures the per-request service
    //    time — and trains the QoS engine's per-model EWMA, the evidence
    //    its slack shedder consults (no estimate, no shedding).
    let start = Instant::now();
    for u in 0..32u32 {
        fifo.recommend(&RecommendRequest::new("HT", u, 5)).unwrap();
        qos.recommend(&RecommendRequest::new("HT", u, 5)).unwrap();
    }
    let estimate = start.elapsed().as_secs_f64() / 64.0;
    println!("calibrated: ~{:.2} ms per request", estimate * 1e3);

    // 3. The same overload mix through both engines: 60 requests against
    //    one worker — every third Interactive with a deadline at half the
    //    total demand, Batch with a generous one, Background with none.
    //    FIFO serves in arrival order, so Interactive requests that arrive
    //    late miss; the QoS scheduler serves the whole Interactive class
    //    first.
    let n = 60usize;
    let demand = estimate * n as f64;
    let mix = |engine: &Engine| -> Vec<(Priority, Result<RecommendResponse, ServeError>)> {
        let now = Instant::now();
        let pending: Vec<_> = (0..n)
            .map(|i| {
                let req = RecommendRequest::new("HT", (i % 300) as u32, 5);
                let (class, req) = match i % 3 {
                    0 => (
                        Priority::Interactive,
                        req.deadline_at(now + Duration::from_secs_f64(0.5 * demand)),
                    ),
                    1 => (
                        Priority::Batch,
                        req.with_priority(Priority::Batch)
                            .deadline_at(now + Duration::from_secs_f64(1.25 * demand)),
                    ),
                    _ => (
                        Priority::Background,
                        req.with_priority(Priority::Background),
                    ),
                };
                (class, engine.submit(req).expect("capacity 256 admits all"))
            })
            .collect();
        pending.into_iter().map(|(c, p)| (c, p.wait())).collect()
    };
    for (label, engine) in [("FIFO", &fifo), ("QoS ", &qos)] {
        let outcomes = mix(engine);
        let rate = |class: Priority| {
            let total = outcomes.iter().filter(|(c, _)| *c == class).count();
            let hit = outcomes
                .iter()
                .filter(|(c, r)| *c == class && r.is_ok())
                .count();
            format!("{hit}/{total}")
        };
        println!(
            "{label} under overload: interactive {} in deadline, batch {}, background {}",
            rate(Priority::Interactive),
            rate(Priority::Batch),
            rate(Priority::Background),
        );
    }

    // 4. Slack shedding: the EWMA says a request takes ~`estimate`; a
    //    deadline far below that is provably unmeetable, so the QoS engine
    //    drops it at dequeue — a typed failure in microseconds instead of
    //    a worker burning a full service time on an answer nobody can use.
    let doomed = qos
        .submit(
            RecommendRequest::new("HT", 7, 5).deadline_in(Duration::from_secs_f64(estimate * 0.2)),
        )
        .expect("admission is separate from expiry")
        .wait();
    assert_eq!(doomed, Err(ServeError::DeadlineExceeded));
    let stats: EngineStats = qos.stats();
    println!(
        "\nunmeetable deadline -> DeadlineExceeded ({} slack-shed, {} expired at dequeue)",
        stats.shed_unmeetable, stats.expired_at_dequeue
    );

    // 5. Every class keeps its own ledger (plus a latency histogram): each
    //    admitted request lands in exactly one outcome bucket.
    println!("\nper-class ledgers (QoS engine):");
    for (class, priority) in stats.per_class.iter().zip(Priority::ALL) {
        let p99 = class
            .latency_p99()
            .map_or("-".into(), |s| format!("{:.1} ms", s * 1e3));
        println!(
            "  {:11} {} submitted = {} served + {} shed + {} expired + {} failed (p99 {p99})",
            priority.name(),
            class.submitted,
            class.served,
            class.shed,
            class.expired,
            class.failed,
        );
        assert_eq!(
            class.submitted,
            class.served + class.shed + class.expired + class.failed
        );
    }
}
