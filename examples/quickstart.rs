//! Quickstart: generate a long-tailed catalog, train the paper's AC2
//! recommender, and print niche-but-relevant suggestions.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use longtail::prelude::*;

fn main() {
    // 1. Data: a MovieLens-like synthetic catalog (power-law popularity,
    //    genre-structured tastes). Real MovieLens files can be loaded with
    //    `longtail::data::load_movielens_1m` instead.
    let config = SyntheticConfig {
        n_users: 400,
        n_items: 300,
        ..SyntheticConfig::movielens_like()
    };
    let data = SyntheticData::generate(&config);
    let popularity = data.dataset.item_popularity();
    let tail = LongTailSplit::by_rating_share(&popularity, 0.2);
    println!(
        "catalog: {} users, {} items, {} ratings ({:.1}% dense)",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_ratings(),
        100.0 * data.dataset.density()
    );
    println!(
        "long tail: {:.0}% of items carry {:.0}% of ratings",
        100.0 * tail.tail_item_fraction(),
        100.0 * tail.tail_rating_share()
    );

    // 2. Model: AC2 — absorbing-cost walk biased by LDA topic entropy
    //    (§4.2.3 of the paper, its best-performing variant).
    let rec = AbsorbingCostRecommender::topic_entropy_auto(
        &data.dataset,
        config.n_genres,
        AbsorbingCostConfig::default(),
    );

    // 3. Recommend for a few users and show how deep into the tail the
    //    suggestions reach.
    for user in [0u32, 7, 42] {
        println!(
            "\nuser {user} (rated {} items):",
            data.dataset.rated_items(user).len()
        );
        for s in rec.recommend(user, 5) {
            println!(
                "  item {:>4}  popularity {:>3}  {}  score {:.3}",
                s.item,
                popularity[s.item as usize],
                if tail.is_tail(s.item) { "tail" } else { "head" },
                s.score,
            );
        }
    }
}
