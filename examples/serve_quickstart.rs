//! Serving quickstart: stand up an `Engine` with several named models and
//! a user-sharded group, then answer typed requests — with per-request
//! stopping overrides, request-scoped exclusions and DP telemetry.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```

use longtail::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Data + models: one catalog, three algorithm variants — the
    //    multi-model deployment shape (pick the popularity-bias trade-off
    //    per request, not per binary).
    let config = SyntheticConfig {
        n_users: 300,
        n_items: 240,
        ..SyntheticConfig::movielens_like()
    };
    let data = SyntheticData::generate(&config);
    let train = &data.dataset;
    let walk = GraphRecConfig {
        max_items: 120,
        iterations: 60,
    };
    let ht = Arc::new(HittingTimeRecommender::new(train, walk));
    let ac1 = Arc::new(AbsorbingCostRecommender::item_entropy(
        train,
        AbsorbingCostConfig {
            graph: walk,
            item_entry_cost: 1.0,
        },
    ));
    let svd = Arc::new(PureSvdRecommender::train(train, 8));

    // A user-sharded registration: even users hit one AT model, odd users
    // another (here trained with different subgraph budgets; in a region-
    // sharded deployment each shard would own its region's graph).
    let at_shards: Vec<longtail::serve::SharedRecommender> = vec![
        Arc::new(AbsorbingTimeRecommender::new(
            train,
            GraphRecConfig {
                max_items: 60,
                iterations: 60,
            },
        )),
        Arc::new(AbsorbingTimeRecommender::new(train, walk)),
    ];

    // 2. The engine: model registry + context pool + persistent workers.
    let engine = Engine::builder()
        .model("HT", ht)
        .model("AC1", ac1)
        .model("PureSVD", svd)
        .sharded_model("AT-sharded", Arc::new(ModuloRouter), at_shards)
        .workers(4)
        .build();
    println!(
        "engine up: models {:?}, {} persistent workers",
        engine.models(),
        engine.n_workers()
    );

    // 3. Single requests on the low-latency inline path.
    let user = 7u32;
    for model in ["HT", "AC1", "PureSVD", "AT-sharded"] {
        let response = engine
            .recommend(&RecommendRequest::new(model, user, 3))
            .expect("model is registered");
        let items: Vec<u32> = response.items.iter().map(|s| s.item).collect();
        println!(
            "user {user} via {:<10} -> {:?}  (answered by {}{}, DP {}/{} iterations)",
            model,
            items,
            response.model,
            response
                .shard
                .map_or(String::new(), |s| format!(" shard {s}")),
            response.telemetry.iterations_run,
            response.telemetry.iterations_budget,
        );
    }

    // 4. Per-request knobs: exact fixed-τ scores, and exclusions layered
    //    on top of the user's training items (e.g. items already on the
    //    page).
    let plain = engine
        .recommend(&RecommendRequest::new("HT", user, 5))
        .unwrap();
    let already_shown: Vec<u32> = plain.items.iter().take(2).map(|s| s.item).collect();
    let refreshed = engine
        .recommend(
            &RecommendRequest::new("HT", user, 5)
                .with_stopping(DpStopping::Fixed)
                .excluding(already_shown.clone()),
        )
        .unwrap();
    assert!(refreshed
        .items
        .iter()
        .all(|s| !already_shown.contains(&s.item)));
    println!(
        "\nexcluding already-shown {:?} refreshes the page to {:?}",
        already_shown,
        refreshed.items.iter().map(|s| s.item).collect::<Vec<_>>()
    );

    // 5. Batch traffic through the persistent worker pool — no thread
    //    start-up per batch, contexts recycled across requests.
    let requests: Vec<RecommendRequest> = (0..64u32)
        .map(|u| RecommendRequest::new(if u % 2 == 0 { "AC1" } else { "HT" }, u % 100, 10))
        .collect();
    let n = requests.len();
    let responses = engine.recommend_batch(requests);
    let served = responses.iter().filter(|r| r.is_ok()).count();
    println!("\nbatch of {n}: {served} served");
    let t = engine.telemetry();
    println!(
        "engine lifetime DP telemetry: {} walk queries, {}/{} iterations ({:.0}% saved by early termination)",
        t.queries,
        t.iterations_run,
        t.iterations_budget,
        t.iterations_saved_fraction() * 100.0
    );
}
