//! Streaming ingest tour: delta appends become visible at published
//! epochs without a rebuild, every response names the `(version, epoch)`
//! it scored at, and a compaction folds the delta into a fresh base
//! published through the hot-swap deploy path.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming_ingest
//! ```

use longtail::prelude::*;
use std::sync::Arc;

fn ht(d: &Dataset) -> Arc<dyn Recommender + Send + Sync> {
    Arc::new(HittingTimeRecommender::new(d, GraphRecConfig::default()))
}

fn show(tag: &str, r: &RecommendResponse) {
    let items: Vec<u32> = r.items.iter().map(|s| s.item).collect();
    println!(
        "  {tag}: items {:?}  (version {}, epoch {:?})",
        items, r.version, r.epoch
    );
}

fn main() {
    // 1. A base corpus with a synthetic timeline (generation order), and
    //    an engine whose "HT" model has a DeltaStore attached. publish
    //    cadence: every 8 appends become one atomically visible epoch.
    let config = SyntheticConfig {
        n_users: 200,
        n_items: 160,
        ..SyntheticConfig::movielens_like()
    };
    let data = SyntheticData::generate(&config);
    let base = data.dataset;
    println!(
        "corpus: {} users x {} items, {} ratings (timestamped: {})",
        base.n_users(),
        base.n_items(),
        base.n_ratings(),
        base.times().is_some()
    );

    let store = Arc::new(DeltaStore::new(
        base.clone(),
        DeltaConfig {
            publish_every: 8,
            ..DeltaConfig::default()
        },
    ));
    let engine = Engine::builder()
        .model("HT", ht(&base))
        .ingest("HT", store.clone())
        .workers(2)
        .build();

    // 2. A pristine store serves epoch 0 on version 1.
    let user = 7u32;
    let req = RecommendRequest::new("HT", user, 5);
    let before = engine.recommend(&req).expect("serve");
    show("cold ", &before);

    // 3. Stream ratings in. The paper's long-tail walk graphs are
    //    rebuilt offline; here fresh `(user, item, weight, timestamp)`
    //    edges join the walk immediately at the next epoch — the overlay
    //    merges them into the base CSR rows per query, renormalizing the
    //    row-stochastic transitions automatically.
    let now = base.n_ratings() as f64;
    for i in 0..16u32 {
        let epoch = store.append(DeltaRating {
            user: (user + i) % base.n_users() as u32,
            item: (i * 13) % base.n_items() as u32,
            value: 3.0 + (i % 3) as f64,
            timestamp: now + i as f64,
        });
        if i % 8 == 7 {
            println!("  appended {} ratings, visible epoch now {epoch}", i + 1);
        }
    }
    let fresh = engine.recommend(&req).expect("serve");
    show("fresh", &fresh);

    // 4. Recency-decay weighting, per request: the same overlay, but
    //    edge weights decay with a one-"day" half-life so the user's
    //    newest tastes dominate the walk.
    let decayed = engine
        .recommend(&req.clone().with_recency(RecencyDecay {
            half_life: 1.0,
            now: now + 16.0,
        }))
        .expect("serve");
    show("decay", &decayed);

    // 5. Compaction: fold the published delta into a freshly built base
    //    and publish it through the same hot-swap path as any deploy.
    //    In-flight queries stay pinned to their epoch; the report says
    //    how many appends folded and how many raced the rebuild.
    let report = engine
        .compact_and_deploy("HT", |union| ht(union))
        .expect("compact");
    println!(
        "  compacted: {} appends folded into version {}, {} residual, publish {:.1} ms",
        report.folded,
        report.version,
        report.remaining,
        report.publish_seconds * 1e3
    );
    let after = engine.recommend(&req).expect("serve");
    show("after", &after);
    assert_eq!(
        after.items, fresh.items,
        "compaction must not change what the user sees"
    );

    // 6. The epoch log pairs every published epoch with its base
    //    version — the witness that no response ever claimed a torn
    //    base/delta combination — and EngineStats carries the ingest
    //    counters for dashboards.
    println!("  epoch log (epoch, base_version): {:?}", store.epoch_log());
    let stats = engine.stats();
    println!(
        "  ingest stats: {} appends, {} epochs published, {} compactions, {} delta edges live",
        stats.ingest.appends,
        stats.ingest.epochs_published,
        stats.ingest.compactions,
        stats.ingest.delta_edges_live
    );
}
