//! # longtail — graph-based long-tail recommendation
//!
//! A from-scratch Rust implementation of *Challenging the Long Tail
//! Recommendation* (Hongzhi Yin, Bin Cui, Jing Li, Junjie Yao, Chen Chen;
//! PVLDB 5(9), VLDB 2012), including every substrate the paper depends on
//! and every baseline its evaluation compares against.
//!
//! ## The problem
//!
//! Classic recommenders (neighborhood CF, matrix factorization, topic
//! models) concentrate their suggestions on the short head of the catalog:
//! the latent factors that survive training are the ones describing popular
//! items. The paper's suite of random-walk algorithms inverts that bias —
//! ranking items by *hitting time*, *absorbing time* and entropy-biased
//! *absorbing cost* on the user-item graph discounts items by their
//! stationary popularity, surfacing niche items that still sit close to the
//! user's taste.
//!
//! ## Crate map
//!
//! | Module (re-export) | Crate | Contents |
//! |--------------------|-------|----------|
//! | [`graph`]  | `longtail-graph`  | CSR matrices, the bipartite user-item graph, BFS subgraphs |
//! | [`linalg`] | `longtail-linalg` | dense kernels: LU, QR, Jacobi eigen, randomized SVD |
//! | [`markov`] | `longtail-markov` | hitting/absorbing times and costs, personalized PageRank |
//! | [`topics`] | `longtail-topics` | Gibbs-sampled LDA over rating counts, user entropy |
//! | [`data`]   | `longtail-data`   | synthetic long-tail datasets, MovieLens parsers, protocol splits, ontology |
//! | [`core`]   | `longtail-core`   | the recommenders: HT, AT, AC1, AC2, LDA, PureSVD, PPR, DPPR, POP |
//! | [`serve`]  | `longtail-serve`  | the serving engine: multi-model registry, shard routing, context pool, worker pool, circuit breakers + fallback |
//! | [`eval`]   | `longtail-eval`   | Recall@N, Popularity@N, Diversity, Similarity, timing, user study |
//!
//! ## Quickstart
//!
//! ```
//! use longtail::prelude::*;
//!
//! // A tiny synthetic movie catalog with a built-in long tail.
//! let config = SyntheticConfig {
//!     n_users: 120,
//!     n_items: 100,
//!     ..SyntheticConfig::movielens_like()
//! };
//! let data = SyntheticData::generate(&config);
//!
//! // Train the paper's headline algorithm (AC2: LDA-entropy absorbing cost).
//! let rec = AbsorbingCostRecommender::topic_entropy_auto(
//!     &data.dataset,
//!     8,
//!     AbsorbingCostConfig::default(),
//! );
//!
//! // Top-5 niche-but-relevant suggestions for user 3.
//! for s in rec.recommend(3, 5) {
//!     println!("item {} (score {:.3})", s.item, s.score);
//! }
//! ```

pub use longtail_core as core;
pub use longtail_data as data;
pub use longtail_eval as eval;
pub use longtail_graph as graph;
pub use longtail_linalg as linalg;
pub use longtail_markov as markov;
pub use longtail_serve as serve;
pub use longtail_topics as topics;

/// One-line import for applications: every type needed to load data, train
/// a recommender and evaluate it.
pub mod prelude {
    pub use longtail_core::{
        AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender,
        AssociationRuleRecommender, DpStopping, DpTelemetry, EdgeDelta, EntropySource,
        ExclusionSet, GraphRecConfig, HittingTimeRecommender, ItemProvenance, KnnRecommender,
        LdaRecommender, PageRankFlavor, PageRankRecommender, Persistable, PopularityRecommender,
        PureSvdRecommender, RecencyDecay, RecommendOptions, Recommender, RerankIndex, RerankPolicy,
        Reranker, RuleConfig, ScoredItem, ScoringContext, TopKCollector, UserSimilarity,
    };
    pub use longtail_data::{
        holdout_latest_favorites, holdout_longtail_favorites, Dataset, LongTailSplit, Ontology,
        ProtocolSplit, Rating, SplitConfig, SyntheticConfig, SyntheticData, TimedRating,
    };
    pub use longtail_eval::{
        catalog_coverage, diversity, exposure_counts, gini_concentration, list_recall,
        mean_popularity, mean_similarity, novelty, popularity_at_n, recall_at_n, sample_test_users,
        simulate_study, tail_recall_split, RecallConfig, RecommendationLists, StudyConfig,
        TailRecallSplit,
    };
    pub use longtail_graph::{BipartiteGraph, GraphStats, Snapshot, SnapshotError, SnapshotWriter};
    pub use longtail_serve::{
        AdmissionPolicy, BreakerConfig, BreakerState, ClassStats, CompactionReport, DeltaConfig,
        DeltaRating, DeltaStore, Engine, EngineBuilder, EngineHealth, EngineStats, FaultKind,
        FaultPlan, FaultyRecommender, IngestStats, ModelHealth, ModelProvenance, ModuloRouter,
        PendingResponse, Priority, RangeRouter, RecommendRequest, RecommendResponse, RetryPolicy,
        SchedPolicy, ServeError, ShardRouter, VersionRecord,
    };
    pub use longtail_topics::{LdaConfig, LdaModel};
}
