//! End-to-end integration: generate → split → train all seven algorithms →
//! evaluate every §5 metric, asserting the paper's qualitative claims at
//! test scale.

use longtail::prelude::*;

/// One shared mid-size corpus for the whole file.
///
/// The paper's qualitative contrasts (tail reach, diversity, novelty) need
/// a sparse long-tailed regime; the Douban-like profile provides it at a
/// size that keeps the whole file under a minute in the test profile.
fn corpus() -> SyntheticData {
    SyntheticData::generate(&SyntheticConfig {
        n_users: 700,
        n_items: 560,
        ..SyntheticConfig::douban_like()
    })
}

#[test]
fn full_pipeline_runs_and_walk_methods_reach_the_tail() {
    let data = corpus();
    let train = &data.dataset;
    let popularity = train.item_popularity();

    let at = AbsorbingTimeRecommender::new(train, GraphRecConfig::default());
    let svd = PureSvdRecommender::train(train, 16);
    let users = sample_test_users(&train.user_activity(), 80, 3, 11);

    let at_lists = RecommendationLists::compute(&at, &users, 10, 2);
    let svd_lists = RecommendationLists::compute(&svd, &users, 10, 2);

    let at_pop = mean_popularity(&at_lists, &popularity);
    let svd_pop = mean_popularity(&svd_lists, &popularity);
    assert!(
        at_pop < svd_pop / 2.0,
        "walk methods must recommend far less popular items: AT {at_pop:.1} vs PureSVD {svd_pop:.1}"
    );
}

#[test]
fn walk_methods_beat_latent_models_on_longtail_recall() {
    // The headline Figure 5 contrast at test scale: absorbing-walk recall
    // beats the latent-factor baselines on held-out tail favourites.
    let data = corpus();
    let tail = LongTailSplit::by_rating_share(&data.dataset.item_popularity(), 0.2);
    let split = holdout_longtail_favorites(
        &data.dataset,
        &tail,
        &SplitConfig {
            n_test: 120,
            ..SplitConfig::default()
        },
    );
    assert!(split.test_cases.len() >= 60, "need enough test cases");

    let at = AbsorbingTimeRecommender::new(&split.train, GraphRecConfig::default());
    let lda = LdaRecommender::train(&split.train, 8);
    let config = RecallConfig {
        n_distractors: 150,
        max_n: 30,
        ..RecallConfig::default()
    };
    let at_curve = recall_at_n(&at, &data.dataset, &split, &config);
    let lda_curve = recall_at_n(&lda, &data.dataset, &split, &config);
    assert!(
        at_curve.at(30) > lda_curve.at(30),
        "AT recall {} must beat LDA {}",
        at_curve.at(30),
        lda_curve.at(30)
    );
}

#[test]
fn diversity_ordering_matches_table_2() {
    let data = corpus();
    let train = &data.dataset;
    let at = AbsorbingTimeRecommender::new(train, GraphRecConfig::default());
    let lda = LdaRecommender::train(train, 8);
    let users = sample_test_users(&train.user_activity(), 100, 3, 17);

    let at_div = diversity(
        &RecommendationLists::compute(&at, &users, 10, 2),
        train.n_items(),
    );
    let lda_div = diversity(
        &RecommendationLists::compute(&lda, &users, 10, 2),
        train.n_items(),
    );
    assert!(
        at_div > 2.0 * lda_div,
        "walk diversity {at_div:.3} must dwarf LDA {lda_div:.3} (Table 2's pattern)"
    );
}

#[test]
fn entropy_bias_keeps_similarity_at_least_at_at_level() {
    // Table 3's pattern: AC1's entropy weighting does not hurt on-taste
    // similarity relative to AT (the paper reports an improvement).
    let data = corpus();
    let train = &data.dataset;
    let ontology = Ontology::from_genres(&data.item_genres, 3, 5);
    let users = sample_test_users(&train.user_activity(), 100, 3, 23);

    let at = AbsorbingTimeRecommender::new(train, GraphRecConfig::default());
    let ac1 = AbsorbingCostRecommender::item_entropy(train, Default::default());
    let at_sim = mean_similarity(
        &RecommendationLists::compute(&at, &users, 10, 2),
        train,
        &ontology,
    );
    let ac1_sim = mean_similarity(
        &RecommendationLists::compute(&ac1, &users, 10, 2),
        train,
        &ontology,
    );
    assert!(
        ac1_sim > at_sim - 0.05,
        "AC1 similarity {ac1_sim:.3} should not fall below AT {at_sim:.3}"
    );
}

#[test]
fn user_study_shape_matches_table_6() {
    // AC2-style tail recommenders must beat PureSVD on novelty; PureSVD may
    // win raw preference (it recommends safe popular items).
    let data = corpus();
    let ac1 = AbsorbingCostRecommender::item_entropy(&data.dataset, Default::default());
    let svd = PureSvdRecommender::train(&data.dataset, 16);
    let config = StudyConfig {
        n_judges: 40,
        ..StudyConfig::default()
    };
    let walk = simulate_study(&ac1, &data, &config);
    let latent = simulate_study(&svd, &data, &config);
    assert!(
        walk.novelty > latent.novelty,
        "walk novelty {:.2} must beat PureSVD {:.2}",
        walk.novelty,
        latent.novelty
    );
    assert!(
        walk.serendipity > latent.serendipity,
        "walk serendipity {:.2} must beat PureSVD {:.2}",
        walk.serendipity,
        latent.serendipity
    );
}

#[test]
fn mu_budget_quality_saturates_like_table_4() {
    // Table 4's mechanics: growing the subgraph budget µ lets the walk
    // reach deeper tail items (popularity decreases monotonically) until
    // the subgraph covers the query's component, after which quality is
    // flat — the paper's µ grid sits in exactly that saturation zone.
    let data = corpus();
    let train = &data.dataset;
    let users = sample_test_users(&train.user_activity(), 40, 3, 29);
    let popularity = train.item_popularity();

    let pop_at_mu = |mu: usize| {
        let rec = AbsorbingTimeRecommender::new(
            train,
            GraphRecConfig {
                max_items: mu,
                iterations: 15,
            },
        );
        mean_popularity(
            &RecommendationLists::compute(&rec, &users, 10, 2),
            &popularity,
        )
    };

    let pops: Vec<f64> = [60usize, 220, 560, usize::MAX]
        .iter()
        .map(|&mu| pop_at_mu(mu))
        .collect();
    // Monotone decrease toward the tail...
    assert!(
        pops[0] > pops[1] && pops[1] > pops[2],
        "popularity not decreasing: {pops:?}"
    );
    // ...and saturation once the budget covers the catalog.
    assert!(
        (pops[2] - pops[3]).abs() < 1e-9,
        "µ = catalog must equal µ = ∞: {pops:?}"
    );
}

#[test]
fn deterministic_across_runs() {
    let a = corpus();
    let b = corpus();
    assert_eq!(a.dataset.user_items(), b.dataset.user_items());
    let rec_a = AbsorbingTimeRecommender::new(&a.dataset, GraphRecConfig::default());
    let rec_b = AbsorbingTimeRecommender::new(&b.dataset, GraphRecConfig::default());
    for u in [0u32, 5, 17] {
        assert_eq!(rec_a.recommend(u, 10), rec_b.recommend(u, 10));
    }
}
