//! Golden end-to-end fixture: known-good top-10 lists per recommender.
//!
//! The equivalence property tests only prove the fused top-k path agrees
//! with score-then-sort *today*; if a future refactor broke both paths the
//! same way, self-consistency would still hold. This suite diffs against
//! rankings frozen on disk instead:
//!
//! * `tests/golden/ratings.csv` — a small committed synthetic dataset
//!   (header `n_users,n_items`, then `user,item,value` triplets);
//! * `tests/golden/expected_top10.tsv` — for every recommender and every
//!   user, the expected top-10 list as `item:score` pairs (scores at 10
//!   significant digits, which tolerates last-ulp reassociation but nothing
//!   an actual ranking change could survive).
//!
//! To regenerate after an *intentional* ranking change, run
//!
//! ```sh
//! cargo test --release --test golden_lists -- --ignored regenerate
//! ```
//!
//! and review the diff like any other code change.

use longtail::prelude::*;
use longtail::topics::LdaConfig;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// The frozen fixture corpus, parsed from `tests/golden/ratings.csv`.
fn fixture_dataset() -> Dataset {
    let raw = std::fs::read_to_string(golden_dir().join("ratings.csv"))
        .expect("tests/golden/ratings.csv is committed with the repo");
    let mut lines = raw.lines().filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().expect("header line");
    let (n_users, n_items) = {
        let mut parts = header.split(',');
        (
            parts.next().unwrap().trim().parse::<usize>().unwrap(),
            parts.next().unwrap().trim().parse::<usize>().unwrap(),
        )
    };
    let ratings: Vec<Rating> = lines
        .map(|line| {
            let mut parts = line.split(',');
            Rating {
                user: parts.next().unwrap().trim().parse().unwrap(),
                item: parts.next().unwrap().trim().parse().unwrap(),
                value: parts.next().unwrap().trim().parse().unwrap(),
            }
        })
        .collect();
    Dataset::from_ratings(n_users, n_items, &ratings)
}

/// All 8 recommender families (10 instances — both AC and both PageRank
/// flavors), trained with fixed, fully deterministic hyper-parameters.
/// `Arc`'d so the same roster can also be registered in a serving
/// [`Engine`] (`engine_serves_the_golden_rankings`).
fn fixture_roster(train: &Dataset) -> Vec<longtail::serve::SharedRecommender> {
    let graph = GraphRecConfig {
        max_items: 40,
        iterations: 25,
    };
    let ac = AbsorbingCostConfig {
        graph,
        item_entry_cost: 1.0,
    };
    vec![
        std::sync::Arc::new(HittingTimeRecommender::new(train, graph)),
        std::sync::Arc::new(AbsorbingTimeRecommender::new(train, graph)),
        std::sync::Arc::new(AbsorbingCostRecommender::item_entropy(train, ac)),
        std::sync::Arc::new(AbsorbingCostRecommender::topic_entropy_auto(train, 4, ac)),
        std::sync::Arc::new(KnnRecommender::train(train, 5, UserSimilarity::Cosine)),
        std::sync::Arc::new(AssociationRuleRecommender::train(
            train,
            &RuleConfig {
                min_support: 2,
                min_confidence: 0.05,
            },
        )),
        std::sync::Arc::new(PureSvdRecommender::train(train, 8)),
        std::sync::Arc::new(LdaRecommender::train_with(
            train,
            &LdaConfig::with_topics(4),
        )),
        std::sync::Arc::new(PageRankRecommender::plain(train)),
        std::sync::Arc::new(PageRankRecommender::discounted(train)),
    ]
}

/// Render every (recommender, user) top-10 list in the committed format,
/// via the fused `recommend_into` path under the given stopping policy.
///
/// The committed fixture is rendered under [`DpStopping::Fixed`]: frozen
/// scores are the full-τ values, exactly reproducible forever. The default
/// adaptive policy serves the *same rankings* with scores from the DP's
/// stop iteration; `adaptive_early_termination_serves_the_golden_rankings`
/// pins that equivalence against the same fixture.
fn render_lists(train: &Dataset, stopping: DpStopping) -> String {
    let mut out = String::from(
        "# algorithm\tuser\ttop-10 as item:score (10 significant digits), '-' when empty\n",
    );
    let mut ctx = ScoringContext::new();
    let opts = RecommendOptions::with_stopping(stopping);
    let mut list = Vec::new();
    for rec in fixture_roster(train) {
        for u in 0..train.n_users() as u32 {
            rec.recommend_into(u, 10, &opts, &mut ctx, &mut list);
            write!(out, "{}\t{}\t", rec.name(), u).unwrap();
            if list.is_empty() {
                out.push('-');
            } else {
                for (j, s) in list.iter().enumerate() {
                    if j > 0 {
                        out.push(' ');
                    }
                    write!(out, "{}:{:.10e}", s.item, s.score).unwrap();
                }
            }
            out.push('\n');
        }
    }
    out
}

#[test]
fn golden_top10_lists_match_fixture() {
    let train = fixture_dataset();
    let expected = std::fs::read_to_string(golden_dir().join("expected_top10.tsv"))
        .expect("tests/golden/expected_top10.tsv is committed with the repo");
    let got = render_lists(&train, DpStopping::Fixed);
    if got != expected {
        // Pinpoint the first diverging line so the failure is actionable.
        for (lineno, (g, e)) in got.lines().zip(expected.lines()).enumerate() {
            assert_eq!(
                g,
                e,
                "golden mismatch at expected_top10.tsv line {} — if this \
                 ranking change is intentional, regenerate with `cargo test \
                 --release --test golden_lists -- --ignored regenerate`",
                lineno + 1
            );
        }
        panic!(
            "golden fixture line count changed: got {} lines, expected {}",
            got.lines().count(),
            expected.lines().count()
        );
    }
}

/// With early termination enabled by default, every recommender must serve
/// exactly the frozen *rankings* — same items, same positions — against the
/// unchanged fixture. Walk-family scores may sit above the frozen full-τ
/// scores (the monotone DP stopped early) but never below and never
/// reordered; every other family must reproduce its committed line
/// byte-for-byte (the adaptive policy only touches the walk DP).
#[test]
fn adaptive_early_termination_serves_the_golden_rankings() {
    let train = fixture_dataset();
    let expected = std::fs::read_to_string(golden_dir().join("expected_top10.tsv"))
        .expect("tests/golden/expected_top10.tsv is committed with the repo");
    let got = render_lists(&train, DpStopping::adaptive());

    let parse = |line: &str| -> (String, Vec<(u32, f64)>) {
        let mut fields = line.split('\t');
        let algo = fields.next().unwrap().to_string();
        let user = fields.next().unwrap();
        let list = fields.next().unwrap();
        let items = if list == "-" {
            Vec::new()
        } else {
            list.split(' ')
                .map(|pair| {
                    let (item, score) = pair.split_once(':').expect("item:score pair");
                    (item.parse().unwrap(), score.parse().unwrap())
                })
                .collect()
        };
        (format!("{algo}\tuser {user}"), items)
    };

    let content = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with('#'))
            .map(String::from)
            .collect::<Vec<_>>()
    };
    let got_lines = content(&got);
    let expected_lines = content(&expected);
    assert_eq!(got_lines.len(), expected_lines.len(), "line count changed");
    for (g, e) in got_lines.iter().zip(&expected_lines) {
        let walk_family = ["HT\t", "AT\t", "AC1\t", "AC2\t"]
            .iter()
            .any(|p| e.starts_with(p));
        if !walk_family {
            // Non-walk families don't run the truncated DP: the adaptive
            // policy must not change a single committed character.
            assert_eq!(g, e, "non-walk line drifted under the adaptive policy");
            continue;
        }
        let (g_key, g_list) = parse(g);
        let (e_key, e_list) = parse(e);
        assert_eq!(g_key, e_key);
        let g_items: Vec<u32> = g_list.iter().map(|&(i, _)| i).collect();
        let e_items: Vec<u32> = e_list.iter().map(|&(i, _)| i).collect();
        assert_eq!(
            g_items, e_items,
            "{g_key}: early termination changed the served ranking"
        );
        for (&(item, g_score), &(_, e_score)) in g_list.iter().zip(&e_list) {
            assert!(
                g_score >= e_score - 1e-9 * (1.0 + e_score.abs()),
                "{g_key} item {item}: adaptive score {g_score} fell below frozen {e_score}"
            );
        }
    }
}

/// The serving engine must pass the golden fixture *unchanged*: routing a
/// request through the registry, the context pool and the worker pool
/// yields byte-for-byte the committed `Fixed`-policy lists for every
/// family and user.
#[test]
fn engine_serves_the_golden_rankings() {
    let train = fixture_dataset();
    let expected = std::fs::read_to_string(golden_dir().join("expected_top10.tsv"))
        .expect("tests/golden/expected_top10.tsv is committed with the repo");

    let roster = fixture_roster(&train);
    let mut builder = Engine::builder().workers(2);
    for rec in &roster {
        builder = builder.model(rec.name(), std::sync::Arc::clone(rec));
    }
    let engine = builder.build();

    // Re-render the committed format, but through the engine's batch path
    // (the persistent worker pool) instead of direct recommend_into.
    let requests: Vec<RecommendRequest> = roster
        .iter()
        .flat_map(|rec| {
            (0..train.n_users() as u32)
                .map(|u| RecommendRequest::new(rec.name(), u, 10).with_stopping(DpStopping::Fixed))
        })
        .collect();
    let keys: Vec<(&'static str, u32)> = roster
        .iter()
        .flat_map(|rec| (0..train.n_users() as u32).map(move |u| (rec.name(), u)))
        .collect();

    let mut got = String::from(
        "# algorithm\tuser\ttop-10 as item:score (10 significant digits), '-' when empty\n",
    );
    for ((name, u), response) in keys.iter().zip(engine.recommend_batch(requests)) {
        let response = response.expect("fixture model is registered");
        assert_eq!(response.model, *name);
        write!(got, "{}\t{}\t", name, u).unwrap();
        if response.items.is_empty() {
            got.push('-');
        } else {
            for (j, s) in response.items.iter().enumerate() {
                if j > 0 {
                    got.push(' ');
                }
                write!(got, "{}:{:.10e}", s.item, s.score).unwrap();
            }
        }
        got.push('\n');
    }
    for (lineno, (g, e)) in got.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            g,
            e,
            "engine diverged from the golden fixture at line {}",
            lineno + 1
        );
    }
    assert_eq!(got.lines().count(), expected.lines().count());
}

/// The full model lifecycle must be ranking-preserving: every fixture
/// family is trained, saved to a binary snapshot, loaded back from the
/// file, hot-deployed into a live engine (replacing the trained original
/// as version 2), and served — and the served lists must match the
/// committed fixture byte-for-byte. Pins save→load→deploy→serve as a
/// bit-identity, not an approximation.
#[test]
fn snapshot_lifecycle_serves_the_golden_rankings() {
    let train = fixture_dataset();
    let expected = std::fs::read_to_string(golden_dir().join("expected_top10.tsv"))
        .expect("tests/golden/expected_top10.tsv is committed with the repo");
    let dir = std::env::temp_dir().join(format!("longtail_golden_snap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Save each trained fixture model to a snapshot file and load it back.
    fn round_trip<R>(rec: R, dir: &std::path::Path) -> longtail::serve::SharedRecommender
    where
        R: Persistable + Send + Sync + 'static,
    {
        let path = dir.join(format!("{}.snap", rec.name()));
        rec.save_to_file(&path).expect("snapshot save");
        std::sync::Arc::new(R::load_from_file(&path).expect("snapshot load"))
    }
    let graph = GraphRecConfig {
        max_items: 40,
        iterations: 25,
    };
    let ac = AbsorbingCostConfig {
        graph,
        item_entry_cost: 1.0,
    };
    let reloaded: Vec<longtail::serve::SharedRecommender> = vec![
        round_trip(HittingTimeRecommender::new(&train, graph), &dir),
        round_trip(AbsorbingTimeRecommender::new(&train, graph), &dir),
        round_trip(AbsorbingCostRecommender::item_entropy(&train, ac), &dir),
        round_trip(
            AbsorbingCostRecommender::topic_entropy_auto(&train, 4, ac),
            &dir,
        ),
        round_trip(
            KnnRecommender::train(&train, 5, UserSimilarity::Cosine),
            &dir,
        ),
        round_trip(
            AssociationRuleRecommender::train(
                &train,
                &RuleConfig {
                    min_support: 2,
                    min_confidence: 0.05,
                },
            ),
            &dir,
        ),
        round_trip(PureSvdRecommender::train(&train, 8), &dir),
        round_trip(
            LdaRecommender::train_with(&train, &LdaConfig::with_topics(4)),
            &dir,
        ),
        round_trip(PageRankRecommender::plain(&train), &dir),
        round_trip(PageRankRecommender::discounted(&train), &dir),
    ];

    // Register the trained originals, then hot-deploy every reloaded model
    // over them — all traffic below serves on version 2, the snapshot copy.
    let originals = fixture_roster(&train);
    let mut builder = Engine::builder().workers(2);
    for rec in &originals {
        builder = builder.model(rec.name(), std::sync::Arc::clone(rec));
    }
    let engine = builder.build();
    for rec in &reloaded {
        let snap = dir.join(format!("{}.snap", rec.name()));
        let v = engine
            .deploy_from(
                rec.name(),
                std::sync::Arc::clone(rec),
                ModelProvenance::Snapshot(snap),
            )
            .expect("fixture model is registered");
        assert_eq!(v, 2);
    }

    let requests: Vec<RecommendRequest> = reloaded
        .iter()
        .flat_map(|rec| {
            (0..train.n_users() as u32)
                .map(|u| RecommendRequest::new(rec.name(), u, 10).with_stopping(DpStopping::Fixed))
        })
        .collect();
    let keys: Vec<(&'static str, u32)> = reloaded
        .iter()
        .flat_map(|rec| (0..train.n_users() as u32).map(move |u| (rec.name(), u)))
        .collect();
    let mut got = String::from(
        "# algorithm\tuser\ttop-10 as item:score (10 significant digits), '-' when empty\n",
    );
    for ((name, u), response) in keys.iter().zip(engine.recommend_batch(requests)) {
        let response = response.expect("fixture model is registered");
        assert_eq!(response.model, *name);
        assert_eq!(response.version, 2, "{name}: request served pre-deploy");
        write!(got, "{}\t{}\t", name, u).unwrap();
        if response.items.is_empty() {
            got.push('-');
        } else {
            for (j, s) in response.items.iter().enumerate() {
                if j > 0 {
                    got.push(' ');
                }
                write!(got, "{}:{:.10e}", s.item, s.score).unwrap();
            }
        }
        got.push('\n');
    }
    for (lineno, (g, e)) in got.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            g,
            e,
            "snapshot lifecycle diverged from the golden fixture at line {}",
            lineno + 1
        );
    }
    assert_eq!(got.lines().count(), expected.lines().count());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fixture_covers_every_family_and_some_tail() {
    // Sanity on the committed corpus itself: all 8 families present in the
    // expected file, and the dataset leaves room for non-trivial lists.
    let expected = std::fs::read_to_string(golden_dir().join("expected_top10.tsv")).unwrap();
    for name in [
        "HT",
        "AT",
        "AC1",
        "AC2",
        "kNN-CF",
        "AssocRules",
        "PureSVD",
        "LDA",
        "PPR",
        "DPPR",
    ] {
        assert!(
            expected
                .lines()
                .any(|l| l.starts_with(&format!("{name}\t"))),
            "fixture is missing {name}"
        );
    }
    let train = fixture_dataset();
    assert!(train.n_ratings() > train.n_users()); // everyone rated something
}

/// Regenerates both fixture files from the current code. Ignored by normal
/// runs; execute explicitly (and review the diff) after an intentional
/// ranking change.
#[test]
#[ignore = "regenerates the committed fixture; run explicitly"]
fn regenerate() {
    let config = SyntheticConfig {
        n_users: 40,
        n_items: 32,
        n_genres: 4,
        zipf_exponent: 1.4,
        taste_concentration: 0.3,
        generalist_fraction: 0.25,
        min_activity: 3,
        max_activity: 12,
        activity_exponent: 1.5,
        rating_noise: 0.5,
        seed: 0x0090_1de2,
    };
    let train = SyntheticData::generate(&config).dataset;
    let mut csv = String::from("# golden fixture corpus — regenerated by tests/golden_lists.rs\n");
    writeln!(csv, "{},{}", train.n_users(), train.n_items()).unwrap();
    for r in train.to_ratings() {
        writeln!(csv, "{},{},{}", r.user, r.item, r.value).unwrap();
    }
    std::fs::create_dir_all(golden_dir()).unwrap();
    std::fs::write(golden_dir().join("ratings.csv"), csv).unwrap();
    // Render from the *parsed* file so the committed CSV is authoritative,
    // under the fixed policy so frozen scores are the exact full-τ values.
    let lists = render_lists(&fixture_dataset(), DpStopping::Fixed);
    std::fs::write(golden_dir().join("expected_top10.tsv"), lists).unwrap();
    println!("regenerated tests/golden/{{ratings.csv,expected_top10.tsv}}");
}
