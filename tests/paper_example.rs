//! Integration test: the paper's Figure 2 worked example through the public
//! API, from rating triples to recommendations.

use longtail::markov::AbsorbingWalk;
use longtail::prelude::*;
use longtail_graph::Adjacency;

fn figure2_dataset() -> Dataset {
    let ratings: Vec<Rating> = [
        (0, 0, 5.0),
        (0, 1, 3.0),
        (0, 4, 3.0),
        (0, 5, 5.0),
        (1, 0, 5.0),
        (1, 1, 4.0),
        (1, 2, 5.0),
        (1, 4, 4.0),
        (1, 5, 5.0),
        (2, 0, 4.0),
        (2, 1, 5.0),
        (2, 2, 4.0),
        (3, 2, 5.0),
        (3, 3, 5.0),
        (4, 1, 4.0),
        (4, 2, 5.0),
    ]
    .into_iter()
    .map(|(user, item, value)| Rating { user, item, value })
    .collect();
    Dataset::from_ratings(5, 6, &ratings)
}

#[test]
fn hitting_times_reproduce_section_3_3() {
    let dataset = figure2_dataset();
    let graph = dataset.to_graph();
    let adj = Adjacency::from_bipartite(&graph);
    let walk = AbsorbingWalk::new(&adj, &[graph.user_node(4)]);
    let h = walk.truncated_times(60);

    // Paper: H(U5|M4)=17.7, H(U5|M1)=19.6, H(U5|M5)=20.2, H(U5|M6)=20.3.
    let cases = [(3u32, 17.7), (0, 19.6), (4, 20.2), (5, 20.3)];
    for (m, expected) in cases {
        let got = h[graph.item_node(m)];
        assert!(
            (got - expected).abs() < 0.1,
            "H(U5|M{}) = {got}, paper says {expected}",
            m + 1
        );
    }
}

#[test]
fn every_walk_recommender_surfaces_the_niche_movie() {
    // §3.3's conclusion generalizes across the walk family: all of HT, AT,
    // AC1, AC2 put the niche Action movie M4 first for U5.
    let dataset = figure2_dataset();
    let config = GraphRecConfig {
        max_items: 6000,
        iterations: 60,
    };
    let ht = HittingTimeRecommender::new(&dataset, config);
    let at = AbsorbingTimeRecommender::new(&dataset, config);
    let ac_config = longtail::core::AbsorbingCostConfig {
        graph: config,
        ..Default::default()
    };
    let ac1 = AbsorbingCostRecommender::item_entropy(&dataset, ac_config);
    let ac2 = AbsorbingCostRecommender::topic_entropy_auto(&dataset, 2, ac_config);

    for rec in [&ht as &dyn Recommender, &at, &ac1, &ac2] {
        let top = rec.recommend(4, 1);
        assert_eq!(
            top[0].item,
            3,
            "{} should recommend M4 to U5, got {:?}",
            rec.name(),
            top
        );
    }
}

#[test]
fn plain_cf_style_baselines_pick_the_popular_movie_instead() {
    // The contrast the paper draws: popularity-blind proximity picks M1.
    let dataset = figure2_dataset();
    let ppr = PageRankRecommender::plain(&dataset);
    let top = ppr.recommend(4, 1);
    assert_eq!(top[0].item, 0, "plain PPR should pick the popular M1");

    // And the paper's DPPR baseline flips back to the tail.
    let dppr = PageRankRecommender::discounted(&dataset);
    let top = dppr.recommend(4, 1);
    assert_eq!(top[0].item, 3, "DPPR should pick the niche M4");
}

#[test]
fn stationary_distribution_tracks_popularity() {
    // Eq. 2-5 foundation: π_j ∝ d_j, so the popular M1 carries more
    // stationary mass than the niche M4 — the bias HT divides away.
    let graph = figure2_dataset().to_graph();
    let pi = graph.stationary_distribution();
    assert!(pi[graph.item_node(0)] > pi[graph.item_node(3)]);
}
