//! Integration test for DESIGN.md ablation #1: the truncated dynamic
//! program (Algorithm 1, τ = 15) reproduces the exact linear-solve ranking.
//!
//! The paper claims "when we use 15 iterations, it already achieves almost
//! the same results as the exact solution". This test quantifies that on
//! synthetic data: the top-10 candidate sets under τ=15 and under the exact
//! LU solve must overlap heavily.

use longtail::prelude::*;
use longtail_graph::{Adjacency, Subgraph};
use longtail_markov::AbsorbingWalk;

#[test]
fn truncated_tau_15_matches_exact_topk() {
    let data = SyntheticData::generate(&SyntheticConfig {
        n_users: 200,
        n_items: 160,
        ..SyntheticConfig::movielens_like()
    });
    let graph = data.dataset.to_graph();

    let mut overlap_sum = 0.0;
    let mut checked = 0usize;
    for user in (0..40u32).filter(|&u| data.dataset.rated_items(u).len() >= 5) {
        let seeds: Vec<usize> = data
            .dataset
            .rated_items(user)
            .iter()
            .map(|&i| graph.item_node(i))
            .collect();
        let sub = Subgraph::bfs_from(&graph, &seeds, usize::MAX);
        let absorbing: Vec<usize> = seeds
            .iter()
            .filter_map(|&s| sub.local_id(s).map(|l| l as usize))
            .collect();
        let walk = AbsorbingWalk::new(sub.adjacency(), &absorbing);
        let truncated = walk.truncated_times(15);
        let Ok(exact) = walk.exact_times() else {
            continue;
        };

        // Rank candidate item nodes (non-absorbing items) both ways.
        let candidates: Vec<usize> = (0..sub.n_nodes())
            .filter(|&l| graph.is_item_node(sub.global_id(l as u32)) && !absorbing.contains(&l))
            .collect();
        if candidates.len() < 20 {
            continue;
        }
        let top10 = |values: &[f64]| -> std::collections::HashSet<usize> {
            let mut order = candidates.clone();
            order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
            order.into_iter().take(10).collect()
        };
        let a = top10(&truncated);
        let b = top10(&exact);
        overlap_sum += a.intersection(&b).count() as f64 / 10.0;
        checked += 1;
    }

    assert!(checked >= 10, "need enough evaluable users, got {checked}");
    let mean_overlap = overlap_sum / checked as f64;
    assert!(
        mean_overlap >= 0.8,
        "τ=15 top-10 overlap with exact solve is only {mean_overlap:.2}"
    );
}

#[test]
fn more_iterations_only_sharpen_the_ranking() {
    // Spot-check rank stability: between τ=15 and τ=60 the top-5 changes
    // little (Algorithm 1's stopping rationale).
    let data = SyntheticData::generate(&SyntheticConfig {
        n_users: 150,
        n_items: 120,
        ..SyntheticConfig::movielens_like()
    });
    let short = AbsorbingTimeRecommender::new(
        &data.dataset,
        GraphRecConfig {
            max_items: usize::MAX,
            iterations: 15,
        },
    );
    let long = AbsorbingTimeRecommender::new(
        &data.dataset,
        GraphRecConfig {
            max_items: usize::MAX,
            iterations: 60,
        },
    );
    let mut overlap = 0usize;
    let mut total = 0usize;
    for u in 0..30u32 {
        let a: std::collections::HashSet<u32> =
            short.recommend(u, 5).iter().map(|s| s.item).collect();
        let b: std::collections::HashSet<u32> =
            long.recommend(u, 5).iter().map(|s| s.item).collect();
        overlap += a.intersection(&b).count();
        total += a.len().min(b.len());
    }
    assert!(
        overlap as f64 >= 0.7 * total as f64,
        "top-5 overlap {overlap}/{total} too low between τ=15 and τ=60"
    );
}

#[test]
fn exact_hitting_times_match_dp_on_the_full_graph() {
    // Cross-validation of the two computation paths on a mid-size graph.
    let data = SyntheticData::generate(&SyntheticConfig {
        n_users: 80,
        n_items: 60,
        ..SyntheticConfig::movielens_like()
    });
    let graph = data.dataset.to_graph();
    let adj = Adjacency::from_bipartite(&graph);
    let target = graph.user_node(3);
    let walk = AbsorbingWalk::new(&adj, &[target]);
    let exact = walk.exact_times().expect("connected at this density");
    let truncated = walk.truncated_times(4000);
    for node in 0..adj.n_nodes() {
        if exact[node].is_finite() {
            assert!(
                (exact[node] - truncated[node]).abs() < 1e-3,
                "node {node}: exact {} vs truncated {}",
                exact[node],
                truncated[node]
            );
        }
    }
}
