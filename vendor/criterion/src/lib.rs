//! Offline stand-in for `criterion`.
//!
//! Implements the measurement API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a plain wall-clock harness: per sample, the closure runs in a timed
//! loop and the harness reports min/median/mean over `sample_size` samples.
//! There is no statistical outlier analysis or HTML report; numbers print to
//! stdout in a stable `name ... time: [min median mean]` format.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Target wall-clock budget per benchmark (all samples together).
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_benchmark(&id.label, self.sample_size, self.measurement_time, f);
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.label),
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Close the group (printing is immediate, so this is a no-op marker).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // Calibration: find an iteration count that makes one sample ≥ ~1ms (or
    // takes its fair share of the measurement budget, whichever is larger).
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement_time / sample_size as u32;
    let target = budget_per_sample.max(Duration::from_millis(1));
    let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<50} time: [{} {} {}] ({} samples x {iters} iters)",
        format_time(min),
        format_time(median),
        format_time(mean),
        samples.len(),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.2} ns", seconds * 1e9)
    }
}

/// Bundle benchmark functions under one group-runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}
