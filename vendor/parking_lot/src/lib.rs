//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free API (`lock()`
//! returns the guard directly, `into_inner()` returns the value directly).
//! Poisoning is ignored: a panicking worker already aborts the computation
//! at a higher level in every use in this workspace.

#![warn(missing_docs)]

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    #[inline]
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the guarded value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn guards_shared_counter() {
        let m = Mutex::new(0usize);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
