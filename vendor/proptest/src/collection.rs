//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::Rng;
use std::ops::Range;

/// Acceptable length specifications for [`vec()`]: a fixed length or a
/// half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            min: len,
            max_exclusive: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
