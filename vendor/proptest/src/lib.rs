//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! range / tuple / `prop_map` / `prop::collection::vec` strategies, and the
//! `prop_assert!` family. Inputs are sampled from a seeded deterministic
//! generator; there is **no shrinking** — a failing case reports the case
//! number and its seed so it can be replayed by re-running the test.
//!
//! As upstream, the `PROPTEST_CASES` environment variable overrides the
//! default case count of properties that don't set one explicitly (CI pins
//! it so suite runtime stays bounded).

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };

    /// Mirror of the `prop` module alias exposed by the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

pub use test_runner::ProptestConfig;

/// Assert a condition inside a property test, failing the current case with
/// a formatted message instead of panicking the whole harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Skip the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Assert equality inside a property test (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside a property test (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                for case in 0..runner.cases() {
                    let rng = runner.rng_for_case(case);
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, rng);)*
                    let outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        if err.is_rejection() {
                            continue;
                        }
                        panic!(
                            "property `{}` failed at case {case}/{}: {err}",
                            stringify!($name),
                            runner.cases(),
                        );
                    }
                }
            }
        )*
    };
}
