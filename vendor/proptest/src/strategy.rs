//! Value-generation strategies.
//!
//! A [`Strategy`] produces random values of its `Value` type from the
//! runner's generator. Unlike real proptest there is no value tree and no
//! shrinking: `sample` returns the value directly.

use crate::test_runner::Rng;
use std::ops::Range;

/// A recipe for generating random values.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i32> {
    type Value = i32;

    fn sample(&self, rng: &mut Rng) -> i32 {
        assert!(self.start < self.end, "empty strategy range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0);
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
    (A / 0, B / 1, C / 2, D / 3, E / 4);
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}
