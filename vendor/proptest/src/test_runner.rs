//! Case scheduling, configuration and failure reporting.

use std::fmt;

/// Configuration of a property test run.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
    /// Base seed; case `k` runs with a generator derived from `seed` and `k`.
    pub seed: u64,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    /// Mirrors real proptest's environment handling: a `PROPTEST_CASES`
    /// variable overrides the built-in default case count (64), letting CI
    /// bound property-suite runtime without touching code. Explicit
    /// [`ProptestConfig::with_cases`] values still win over the
    /// environment, exactly as upstream.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(64);
        Self {
            cases,
            seed: 0x70_72_6f_70, // "prop"
        }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            rejection: false,
        }
    }

    /// A rejection (`prop_assume!` miss): the case is skipped, not failed.
    pub fn reject(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            rejection: true,
        }
    }

    /// Whether this error is a rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives the per-case generators of one property.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: Rng,
}

impl TestRunner {
    /// A runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        Self {
            config,
            rng: Rng::new(config.seed),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The generator for case number `case` (deterministic in
    /// `(seed, case)`, so failures are replayable).
    pub fn rng_for_case(&mut self, case: u32) -> &mut Rng {
        self.rng =
            Rng::new(self.config.seed ^ (case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        &mut self.rng
    }
}

/// The deterministic SplitMix64 generator strategies sample from.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next uniform 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
