//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the rand 0.9 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`RngExt::random`],
//! [`RngExt::random_range`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 (Steele, Lea & Flood 2014): a 64-bit
//! state-increment generator with excellent statistical behaviour for its
//! size and a trivially seedable, fully deterministic stream. Determinism is
//! the property the workspace actually relies on (seeded experiments and
//! reproducible protocol splits); the stream does **not** match the real
//! `StdRng` bit-for-bit, which no caller assumes.

#![warn(missing_docs)]

use std::ops::Range;

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator's raw output.
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-32 for every span this workspace uses;
                // acceptable for a test/experiment stand-in.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u32, u64, usize);

impl SampleRange<i64> for Range<i64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange<i32> for Range<i32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience draws on any generator (the rand 0.9 `Rng` surface the
/// workspace uses, under its post-0.9 method names).
pub trait RngExt: RngCore {
    /// A uniform draw of `T` (`f64` in `[0, 1)`, integers over their full
    /// width).
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from a half-open range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
