//! Offline stand-in for `serde`.
//!
//! No JSON backend is available offline, so serialization never actually
//! runs; the workspace only needs the trait *bounds* (for forward-compatible
//! API signatures) and the derive attributes to compile. `Serialize` and
//! `Deserialize` are therefore marker traits with blanket impls, and the
//! derives (re-exported from the vendored `serde_derive`) expand to nothing.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types. Blanket-implemented: every type is
/// "serializable" in the offline stand-in.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types, blanket-implemented like [`Serialize`].
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Deserialization-side traits.
pub mod de {
    /// Marker for owned-deserializable types, blanket-implemented.
    pub trait DeserializeOwned {}

    impl<T> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Probe {
        #[allow(dead_code)]
        x: u32,
    }

    #[test]
    fn bounds_are_satisfied_by_derive() {
        fn assert_bounds<T: crate::Serialize + crate::de::DeserializeOwned>() {}
        assert_bounds::<Probe>();
    }
}
