//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` gives `Serialize`/`DeserializeOwned` blanket impls
//! (no actual serialization happens offline), so these derives only need to
//! exist for `#[derive(Serialize, Deserialize)]` attributes to parse. They
//! expand to nothing.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
